#include "channel/schedule.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace vodbcast::channel {

namespace {
constexpr double kTimeEps = 1e-9;
}  // namespace

core::Minutes PeriodicBroadcast::next_start_at_or_after(core::Minutes t) const {
  VB_EXPECTS(period.v > 0.0);
  if (t.v <= phase.v) {
    return phase;
  }
  const double k = std::ceil((t.v - phase.v) / period.v - kTimeEps);
  return core::Minutes{phase.v + k * period.v};
}

std::uint64_t PeriodicBroadcast::starts_before(core::Minutes t) const {
  VB_EXPECTS(period.v > 0.0);
  if (t.v <= phase.v) {
    return 0;
  }
  return static_cast<std::uint64_t>(
      std::ceil((t.v - phase.v) / period.v - kTimeEps));
}

bool PeriodicBroadcast::transmitting_at(core::Minutes t) const {
  VB_EXPECTS(period.v > 0.0);
  if (t.v < phase.v) {
    return false;
  }
  const double within = std::fmod(t.v - phase.v, period.v);
  return within < transmission.v - kTimeEps;
}

ChannelPlan::ChannelPlan(std::vector<PeriodicBroadcast> streams)
    : streams_(std::move(streams)) {
  for (const auto& s : streams_) {
    VB_EXPECTS(s.period.v > 0.0);
    VB_EXPECTS(s.phase.v >= 0.0 && s.phase.v < s.period.v + kTimeEps);
    VB_EXPECTS(s.transmission.v > 0.0 &&
               s.transmission.v <= s.period.v + kTimeEps);
    VB_EXPECTS(s.rate.v > 0.0);
    VB_EXPECTS(s.segment >= 1);
  }
}

std::vector<PeriodicBroadcast> ChannelPlan::streams_for(
    core::VideoId video) const {
  std::vector<PeriodicBroadcast> result;
  for (const auto& s : streams_) {
    if (s.video == video) {
      result.push_back(s);
    }
  }
  std::sort(result.begin(), result.end(),
            [](const PeriodicBroadcast& a, const PeriodicBroadcast& b) {
              if (a.segment != b.segment) {
                return a.segment < b.segment;
              }
              return a.subchannel < b.subchannel;
            });
  return result;
}

std::optional<PeriodicBroadcast> ChannelPlan::find(core::VideoId video,
                                                   int segment,
                                                   int subchannel) const {
  for (const auto& s : streams_) {
    if (s.video == video && s.segment == segment &&
        s.subchannel == subchannel) {
      return s;
    }
  }
  return std::nullopt;
}

core::MbitPerSec ChannelPlan::peak_aggregate_rate() const {
  if (streams_.empty()) {
    return core::MbitPerSec{0.0};
  }
  // Fast path: when every stream loops continuously (transmission ==
  // period) the aggregate is constant, so the peak is just the sum.
  const bool always_on = std::all_of(
      streams_.begin(), streams_.end(), [](const PeriodicBroadcast& s) {
        return s.transmission.v >= s.period.v - kTimeEps;
      });
  if (always_on) {
    double total = 0.0;
    for (const auto& s : streams_) {
      total += s.rate.v;
    }
    return core::MbitPerSec{total};
  }
  // Sample the aggregate just after every transmission start within two
  // periods of every stream; for periodic plans this covers the steady state.
  std::vector<double> samples;
  for (const auto& s : streams_) {
    for (int k = 0; k < 2; ++k) {
      samples.push_back(s.phase.v + k * s.period.v + kTimeEps * 10);
    }
  }
  double peak = 0.0;
  for (const double t : samples) {
    double total = 0.0;
    for (const auto& s : streams_) {
      if (s.transmitting_at(core::Minutes{t})) {
        total += s.rate.v;
      }
    }
    peak = std::max(peak, total);
  }
  return core::MbitPerSec{peak};
}

int ChannelPlan::logical_channel_count() const {
  int max_channel = -1;
  for (const auto& s : streams_) {
    max_channel = std::max(max_channel, s.logical_channel);
  }
  return max_channel + 1;
}

}  // namespace vodbcast::channel
