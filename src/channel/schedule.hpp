// Channel substrate: periodic broadcast timelines.
//
// Every scheme in the paper ultimately reduces to a set of *periodic
// broadcast streams*: stream s carries one (video, segment) pair at a fixed
// rate, transmitting for `transmission` minutes starting at
// phase + n * period for all n >= 0. This module models those streams and
// the aggregate channel plan, including the bandwidth-accounting invariant
// that concurrent transmissions never exceed the server budget.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/units.hpp"
#include "core/video.hpp"

namespace vodbcast::channel {

/// One periodic broadcast stream.
struct PeriodicBroadcast {
  int logical_channel = 0;       ///< which server channel carries it
  int subchannel = 0;            ///< PPB replica index; 0 otherwise
  core::VideoId video = 0;
  int segment = 1;               ///< 1-based segment index
  core::MbitPerSec rate{0.0};    ///< transmission rate
  core::Minutes period{0.0};     ///< time between broadcast starts
  core::Minutes phase{0.0};      ///< first start time (>= 0, < period)
  core::Minutes transmission{0.0};  ///< duration of one broadcast

  /// Start time of the first broadcast at or after `t`.
  [[nodiscard]] core::Minutes next_start_at_or_after(core::Minutes t) const;

  /// Number of broadcasts started in [0, t).
  [[nodiscard]] std::uint64_t starts_before(core::Minutes t) const;

  /// True if a transmission is in progress at time t.
  [[nodiscard]] bool transmitting_at(core::Minutes t) const;
};

/// A complete server broadcast plan for one scheme instance.
class ChannelPlan {
 public:
  ChannelPlan() = default;
  explicit ChannelPlan(std::vector<PeriodicBroadcast> streams);

  [[nodiscard]] const std::vector<PeriodicBroadcast>& streams() const noexcept {
    return streams_;
  }
  [[nodiscard]] std::size_t stream_count() const noexcept {
    return streams_.size();
  }

  /// All streams carrying segments of `video`, ordered by segment index.
  [[nodiscard]] std::vector<PeriodicBroadcast> streams_for(
      core::VideoId video) const;

  /// The stream for (video, segment, subchannel); nullopt if absent.
  [[nodiscard]] std::optional<PeriodicBroadcast> find(
      core::VideoId video, int segment, int subchannel = 0) const;

  /// Peak aggregate transmission rate over one hyper-period, sampled at
  /// every transmission start/end boundary. For always-on plans (SB, PPB)
  /// this equals the sum of stream rates.
  [[nodiscard]] core::MbitPerSec peak_aggregate_rate() const;

  /// Number of distinct logical channels used.
  [[nodiscard]] int logical_channel_count() const;

 private:
  std::vector<PeriodicBroadcast> streams_;
};

}  // namespace vodbcast::channel
