// Emission timetable: the concrete program guide a broadcast server
// operator runs from. Enumerates every transmission start of a channel plan
// inside a time window, in order — the executable form of "channel i
// repeatedly broadcasts segment i".
#pragma once

#include <string>
#include <vector>

#include "channel/schedule.hpp"

namespace vodbcast::channel {

/// One scheduled transmission.
struct Emission {
  core::Minutes start{0.0};
  core::Minutes end{0.0};
  int logical_channel = 0;
  int subchannel = 0;
  core::VideoId video = 0;
  int segment = 1;
  core::MbitPerSec rate{0.0};
};

/// All transmissions of `plan` starting in [from, until), ordered by start
/// time, then channel. The window is capped to `max_emissions` entries
/// (contract-checked) so a runaway query cannot exhaust memory.
/// Preconditions: until >= from.
[[nodiscard]] std::vector<Emission> timetable(
    const ChannelPlan& plan, core::Minutes from, core::Minutes until,
    std::size_t max_emissions = 100000);

/// Renders a timetable as an aligned text program guide.
[[nodiscard]] std::string render_timetable(const std::vector<Emission>& t);

}  // namespace vodbcast::channel
