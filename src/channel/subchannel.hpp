// PPB subchannel construction (paper Section 2).
//
// PPB splits each of the K logical channels (B/K Mb/s each) into P*M
// time-multiplexed subchannels of B/(K*M*P) Mb/s. Segment i of video v is
// replicated on P subchannels whose broadcasts are phase-shifted by
// period/P, so a client that tunes only at broadcast starts waits at most
// period/P for the next replica.
#pragma once

#include "channel/schedule.hpp"
#include "core/units.hpp"
#include "core/video.hpp"

namespace vodbcast::channel {

/// Inputs for building a PPB subchannel plan.
struct SubchannelSpec {
  int logical_channels = 0;       ///< K
  int replicas = 0;               ///< P
  int videos = 0;                 ///< M
  core::MbitPerSec server_bandwidth{0.0};  ///< B
};

/// Per-subchannel transmission rate B / (K * M * P).
[[nodiscard]] core::MbitPerSec subchannel_rate(const SubchannelSpec& spec);

/// Builds the P phase-shifted replica streams for one (video, segment).
/// `segment_duration` is the playback duration D_i of the segment;
/// `display_rate` the video's b. The broadcast period of each replica is the
/// transmission time of the segment at the subchannel rate.
[[nodiscard]] std::vector<PeriodicBroadcast> replica_streams(
    const SubchannelSpec& spec, core::VideoId video, int segment,
    core::Minutes segment_duration, core::MbitPerSec display_rate);

}  // namespace vodbcast::channel
