#include "channel/timetable.hpp"

#include <algorithm>

#include "util/contracts.hpp"
#include "util/text_table.hpp"

namespace vodbcast::channel {

std::vector<Emission> timetable(const ChannelPlan& plan, core::Minutes from,
                                core::Minutes until,
                                std::size_t max_emissions) {
  VB_EXPECTS(until.v >= from.v);
  VB_EXPECTS(max_emissions >= 1);

  std::vector<Emission> emissions;
  for (const auto& s : plan.streams()) {
    core::Minutes start = s.next_start_at_or_after(from);
    while (start.v < until.v) {
      VB_EXPECTS_MSG(emissions.size() < max_emissions,
                     "timetable window too large");
      emissions.push_back(Emission{
          .start = start,
          .end = core::Minutes{start.v + s.transmission.v},
          .logical_channel = s.logical_channel,
          .subchannel = s.subchannel,
          .video = s.video,
          .segment = s.segment,
          .rate = s.rate,
      });
      start = core::Minutes{start.v + s.period.v};
    }
  }
  std::sort(emissions.begin(), emissions.end(),
            [](const Emission& a, const Emission& b) {
              if (a.start.v != b.start.v) {
                return a.start.v < b.start.v;
              }
              if (a.logical_channel != b.logical_channel) {
                return a.logical_channel < b.logical_channel;
              }
              return a.subchannel < b.subchannel;
            });
  return emissions;
}

std::string render_timetable(const std::vector<Emission>& t) {
  util::TextTable table({"start (min)", "end (min)", "channel", "sub",
                         "video", "segment", "rate (Mb/s)"});
  for (const auto& e : t) {
    table.add_row({util::TextTable::num(e.start.v, 3),
                   util::TextTable::num(e.end.v, 3),
                   util::TextTable::num(
                       static_cast<long long>(e.logical_channel)),
                   util::TextTable::num(static_cast<long long>(e.subchannel)),
                   util::TextTable::num(static_cast<long long>(e.video)),
                   util::TextTable::num(static_cast<long long>(e.segment)),
                   util::TextTable::num(e.rate.v, 2)});
  }
  return table.render();
}

}  // namespace vodbcast::channel
