// The adaptive control plane run end to end: an online hybrid server inside
// the discrete-event simulation.
//
// batching::evaluate_hybrid answers the paper's static question — given the
// Zipf ranks, split the bandwidth once between SB broadcast (hot titles) and
// scheduled multicast (the tail). This module answers the *online* question:
// demand is non-stationary, so a ctrl::PopularityEstimator tracks per-title
// request rates from the live stream, and a ctrl::ChannelAllocator re-solves
// the split at every control epoch. Transitions obey the SB plan contract:
//
//   * a promoted title starts a fresh broadcast plan at the epoch boundary
//     and immediately absorbs its pending tail queue (those subscribers tune
//     to the first Segment-1 slot);
//   * a demoted title keeps its channels until every tuned-in client has
//     finished receiving on the old plan ("drain"); only then is the
//     bandwidth handed to the tail. New arrivals during the drain are routed
//     to the tail, so every client always sees one consistent plan and no
//     loader ever spans a channel retune (tools/trace_check --realloc
//     verifies this from the trace);
//   * when the budget cannot cover the hot set, the allocator degrades
//     (fewer channels per title, then fewer hot titles) instead of rejecting
//     requests; the "ctrl.degraded" gauge records the choice.
//
// The non-stationary scenario is a mid-run Zipf rank shuffle ("popularity
// flip"): at flip_at the rank->title permutation is re-drawn from the run
// seed, so yesterday's tail carries today's demand. The report tracks how
// many epochs the controller needs to re-converge its hot set onto the new
// ranks.
#pragma once

#include <cstdint>
#include <vector>

#include "batching/queue_policies.hpp"
#include "core/video.hpp"
#include "ctrl/allocator.hpp"
#include "ctrl/popularity.hpp"
#include "fault/injector.hpp"
#include "obs/sampler.hpp"
#include "obs/sink.hpp"
#include "sim/stats.hpp"
#include "util/task_pool.hpp"
#include "workload/zipf.hpp"

namespace vodbcast::ctrl {

struct AdaptiveConfig {
  core::MbitPerSec total_bandwidth{600.0};
  std::size_t catalog_size = 100;
  /// Target hot-set size (shrunk only under overload degradation).
  std::size_t hot_titles = 10;
  /// Preferred SB channels per hot title (shrunk first under overload).
  int broadcast_channels_per_video = 6;
  std::uint64_t sb_width = 52;
  core::VideoParams video{};
  double arrivals_per_minute = 10.0;
  double zipf_theta = workload::kPaperSkew;
  core::Minutes horizon{2000.0};

  /// Control-plane knobs. epoch <= 0 disables re-allocation entirely: the
  /// initial (prior-rank) allocation is frozen, which is exactly the static
  /// evaluate_hybrid baseline run on the same request stream.
  core::Minutes epoch{60.0};
  core::Minutes half_life{60.0};
  double promote_ratio = 1.2;
  double demote_ratio = 0.8;
  int min_tail_channels = 1;
  /// Hot set counts as re-converged after the flip when it carries at least
  /// this fraction of the demand mass of the ideal (oracle) hot set.
  double convergence_fraction = 0.9;

  /// Simulation time of the popularity flip; < 0 disables the scenario.
  core::Minutes flip_at{-1.0};

  std::uint64_t seed = 11;
  /// Optional observability attachment (not owned): "ctrl.*" metrics and
  /// realloc/promote/demote/drain_complete trace events, plus the client
  /// arrival/tune-in/download events trace_check replays.
  obs::Sink* sink = nullptr;
  /// Optional time-series sampler (not owned): "ctrl.hot_titles",
  /// "ctrl.tail_channels", "ctrl.draining_titles", "ctrl.queue_depth".
  obs::Sampler* sampler = nullptr;
  /// Optional fault injector (not owned). Episode channels key hot titles
  /// as title id + 1 (-1 = every title). A channel outage covering at
  /// least half of the elapsed control epoch on a hot title forces its
  /// demotion through the normal drain machinery (graceful degradation:
  /// demand re-routes to the tail until the channel heals and the
  /// allocator re-promotes); a server restart makes every hot plan start
  /// fresh at the restart instant, resetting the Segment-1 slot clock.
  /// Null, or a plan with zero episodes, leaves the run bit-identical.
  const fault::Injector* injector = nullptr;
};

struct AdaptiveReport {
  /// Demand-weighted wait of every served request, both sides.
  sim::Distribution wait_minutes;
  sim::Distribution hot_wait_minutes;   ///< served by periodic broadcast
  sim::Distribution tail_wait_minutes;  ///< served by scheduled multicast
  std::uint64_t served_hot = 0;
  std::uint64_t served_tail = 0;
  /// Requests still queued on the tail at the horizon (never rejected,
  /// simply not yet served when observation stopped).
  std::uint64_t unserved = 0;

  std::uint64_t epochs = 0;
  std::uint64_t reallocs = 0;      ///< epochs that changed the allocation
  std::uint64_t promotions = 0;
  std::uint64_t demotions = 0;
  std::uint64_t drains_completed = 0;
  std::uint64_t deferred_promotions = 0;
  std::uint64_t degraded_epochs = 0;
  /// Fault-plan consequences (zero without an injector):
  std::uint64_t fault_forced_demotions = 0;  ///< hot titles demoted by outage
  std::uint64_t fault_restarts = 0;          ///< server-restart episodes hit

  int channels_per_video = 0;      ///< after any overload degradation
  /// Guaranteed worst-case wait of a hot title at channels_per_video (the
  /// SB access latency D1); degradation raises it but never unbounds it.
  core::Minutes broadcast_worst_latency{0.0};
  bool degraded = false;
  std::vector<std::size_t> final_hot;  ///< sorted title ids at the horizon

  /// Epochs after flip_at until the hot set first carried
  /// convergence_fraction of the oracle hot set's demand mass; -1 when a
  /// flip happened but the controller never re-converged (or no flip ran).
  std::int64_t converged_epochs_after_flip = -1;

  [[nodiscard]] double mean_wait_minutes() const {
    return wait_minutes.empty() ? 0.0 : wait_minutes.mean();
  }
};

/// Runs the adaptive hybrid end to end on one seeded request stream.
/// Preconditions (std::invalid_argument, from the allocator): a budget that
/// carries the tail floor, differing hysteresis thresholds.
[[nodiscard]] AdaptiveReport simulate_adaptive(const batching::BatchingPolicy& policy,
                                               const AdaptiveConfig& config);

/// R replications with the simulate_replicated determinism contract:
/// replication r's seed is the (r+1)-th SplitMix64 output of config.seed,
/// per-replication sinks fold into config.sink after the join in replication
/// order, and the result is bit-identical at any thread count (null pool =
/// serial). config.sampler is not forwarded to replications.
struct ReplicatedAdaptiveReport {
  AdaptiveReport merged;
  std::size_t replications = 0;
  /// Per-replication overall mean wait, in replication order.
  sim::Distribution replication_mean_wait;
  /// 1.96 * s / sqrt(R) over the replication means; 0 when R < 2.
  double wait_mean_ci95 = 0.0;
};

[[nodiscard]] ReplicatedAdaptiveReport simulate_adaptive_replicated(
    const batching::BatchingPolicy& policy, const AdaptiveConfig& config,
    std::size_t reps, util::TaskPool* pool = nullptr);

}  // namespace vodbcast::ctrl
