#include "ctrl/popularity.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/contracts.hpp"

namespace vodbcast::ctrl {

namespace {
constexpr double kLn2 = 0.6931471805599453;
}  // namespace

PopularityEstimator::PopularityEstimator(std::size_t catalog_size,
                                         core::Minutes half_life)
    : titles_(catalog_size), half_life_(half_life) {
  VB_EXPECTS(catalog_size >= 1);
  VB_EXPECTS(half_life.v > 0.0);
}

void PopularityEstimator::seed_prior(const std::vector<double>& popularity,
                                     double arrivals_per_minute) {
  VB_EXPECTS(popularity.size() == titles_.size());
  VB_EXPECTS(arrivals_per_minute >= 0.0);
  for (std::size_t v = 0; v < titles_.size(); ++v) {
    VB_EXPECTS(popularity[v] >= 0.0);
    titles_[v].weight =
        popularity[v] * arrivals_per_minute * half_life_.v / kLn2;
    titles_[v].last_update = 0.0;
  }
}

double PopularityEstimator::decay(double from, double to) const {
  return to == from ? 1.0 : std::exp2(-(to - from) / half_life_.v);
}

void PopularityEstimator::observe(core::VideoId video, core::Minutes at) {
  VB_EXPECTS(video < titles_.size());
  Title& title = titles_[video];
  VB_EXPECTS_MSG(at.v >= title.last_update,
                 "estimator observations must be time-ordered per title");
  title.weight = title.weight * decay(title.last_update, at.v) + 1.0;
  title.last_update = at.v;
}

double PopularityEstimator::weight(core::VideoId video,
                                   core::Minutes at) const {
  VB_EXPECTS(video < titles_.size());
  const Title& title = titles_[video];
  VB_EXPECTS_MSG(at.v >= title.last_update,
                 "cannot read an estimator weight in the past");
  return title.weight * decay(title.last_update, at.v);
}

std::vector<double> PopularityEstimator::weights_at(core::Minutes at) const {
  std::vector<double> out(titles_.size());
  for (std::size_t v = 0; v < titles_.size(); ++v) {
    out[v] = weight(static_cast<core::VideoId>(v), at);
  }
  return out;
}

double PopularityEstimator::estimated_rate_per_minute(core::VideoId video,
                                                      core::Minutes at) const {
  return weight(video, at) * kLn2 / half_life_.v;
}

std::vector<std::size_t> PopularityEstimator::ranking(core::Minutes at) const {
  const auto weights = weights_at(at);
  std::vector<std::size_t> order(titles_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&weights](std::size_t a, std::size_t b) {
                     return weights[a] > weights[b];
                   });
  return order;
}

}  // namespace vodbcast::ctrl
