// Online per-title popularity tracking for the adaptive control plane.
//
// The static hybrid (batching::evaluate_hybrid) fixes the hot set from the
// prior Zipf ranks once; real metropolitan demand is non-stationary (new
// releases churn the ranks), so the controller needs a live estimate of each
// title's request rate. The estimator keeps one exponentially-decayed weight
// per title with a *known-answer decay contract* so results are reproducible
// under sim::simulate_replicated:
//
//   weight_v(t) = sum over observations of v at t_obs <= t of
//                 2^(-(t - t_obs) / half_life)
//
// i.e. a single observation is worth exactly 1 at the instant it lands, 1/2
// one half-life later, 1/4 after two. For a stationary Poisson stream of
// rate lambda the stationary expected weight is lambda * half_life / ln 2,
// so rates convert to weights and back in closed form:
//
//   estimated_rate(t) = weight(t) * ln 2 / half_life
//
// Decay is applied lazily per title (one exp2 per observation/read), so the
// estimator is O(1) per request and never walks the catalog on the hot path.
#pragma once

#include <cstddef>
#include <vector>

#include "core/units.hpp"
#include "core/video.hpp"

namespace vodbcast::ctrl {

class PopularityEstimator {
 public:
  /// Preconditions: catalog_size >= 1, half_life > 0.
  PopularityEstimator(std::size_t catalog_size, core::Minutes half_life);

  /// Warm start: installs the stationary weight lambda_v * half_life / ln 2
  /// for every title, where lambda_v = popularity[v] * arrivals_per_minute.
  /// The controller seeds the prior Zipf ranks so the first epochs do not
  /// demote titles merely because the window is empty.
  /// Preconditions: popularity.size() == catalog_size, rates non-negative.
  void seed_prior(const std::vector<double>& popularity,
                  double arrivals_per_minute);

  /// Accounts one request for `video` at simulation time `at`. Per-title
  /// observation times must be non-decreasing (the discrete-event clock
  /// guarantees this; the estimator contract-checks it).
  void observe(core::VideoId video, core::Minutes at);

  /// The decayed weight of `video` at time `at` (>= its last observation).
  [[nodiscard]] double weight(core::VideoId video, core::Minutes at) const;

  /// All weights decayed to the common instant `at`, indexed by title.
  [[nodiscard]] std::vector<double> weights_at(core::Minutes at) const;

  /// weight(video, at) * ln 2 / half_life — requests per minute.
  [[nodiscard]] double estimated_rate_per_minute(core::VideoId video,
                                                 core::Minutes at) const;

  /// Titles ordered by decayed weight at `at`, descending; equal weights
  /// break ties on the lower title id so the order is deterministic.
  [[nodiscard]] std::vector<std::size_t> ranking(core::Minutes at) const;

  [[nodiscard]] std::size_t catalog_size() const noexcept {
    return titles_.size();
  }
  [[nodiscard]] core::Minutes half_life() const noexcept { return half_life_; }

 private:
  struct Title {
    double weight = 0.0;
    double last_update = 0.0;  ///< minutes; weight is current as of here
  };

  /// 2^(-(to - from)/half_life); 1.0 when to == from.
  [[nodiscard]] double decay(double from, double to) const;

  std::vector<Title> titles_;
  core::Minutes half_life_;
};

}  // namespace vodbcast::ctrl
