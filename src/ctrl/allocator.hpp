// Epoch-based channel reallocation with hysteresis and bounded degradation.
//
// At every control epoch the allocator re-solves the hybrid split: which
// titles deserve SB periodic broadcast, at how many channels each, and how
// much bandwidth is left for the scheduled-multicast tail. It is a pure
// function of (estimator weights, current hot set, draining set, reserved
// bandwidth) so it unit-tests in isolation and stays deterministic under
// replication.
//
// Three rules shape the solution:
//
//   * Hysteresis — promote/demote thresholds differ, so rank noise cannot
//     flap a title across the broadcast boundary. An outsider displaces the
//     weakest incumbent only when BOTH
//       weight(outsider)  >= promote_ratio * weight(incumbent)   (ratio > 1)
//       weight(incumbent) <= demote_ratio  * weight(outsider)    (ratio <= 1)
//     hold; a swap strictly raises the hot set's minimum weight, so the
//     swap loop terminates in at most catalog_size steps.
//
//   * Drain-before-retune — a demoted title's channels stay allocated until
//     its in-flight clients finish on the old plan (the SB guarantee that
//     clients only tune to broadcast *beginnings* makes the old plan valid
//     until then). Draining titles are excluded from promotion and their
//     bandwidth is passed in as `reserved_bandwidth`; promotions that do not
//     fit next to the reserve are deferred to a later epoch instead of
//     violating the tail floor.
//
//   * Bounded degradation — when the steady-state budget cannot cover the
//     target hot set at the preferred per-title channel count, the allocator
//     first shrinks channels-per-title (raising the bounded worst-case
//     latency), then the hot-set size, and reports the choice; it never
//     rejects requests.
#pragma once

#include <cstddef>
#include <vector>

#include "core/units.hpp"

namespace vodbcast::ctrl {

struct AllocatorConfig {
  core::MbitPerSec total_bandwidth{600.0};
  /// Display rate b of one channel (Mb/s).
  double channel_rate = 1.5;
  /// Desired hot-set size; shrunk only under overload.
  std::size_t target_hot_titles = 10;
  /// Preferred SB channels per hot title (K); shrunk first under overload.
  int channels_per_video = 6;
  /// The tail must always keep at least this many channels.
  int min_tail_channels = 1;
  /// An outsider must out-weigh the weakest incumbent by this factor to be
  /// promoted into a full hot set. Must be > 1 and > demote_ratio.
  double promote_ratio = 1.2;
  /// The incumbent must have fallen to this fraction of the challenger's
  /// weight before it is demoted. Must be in (0, 1].
  double demote_ratio = 0.8;
};

/// One epoch's re-solve, expressed as a diff against the current state so
/// the simulation can apply transitions (and drains) explicitly.
struct Allocation {
  /// The hot set after this epoch (sorted by title id). Excludes titles
  /// still draining from an earlier demotion.
  std::vector<std::size_t> hot;
  /// Titles entering the hot set this epoch (subset of `hot`).
  std::vector<std::size_t> promoted;
  /// Titles leaving the hot set this epoch; their channels must drain
  /// before the bandwidth moves. Includes retune-demotions (see below).
  std::vector<std::size_t> demoted;
  /// Channels per hot title after degradation (<= config value).
  int channels_per_video = 0;
  /// Desired promotions deferred because draining titles still hold the
  /// bandwidth; they stay on the tail until a later epoch.
  std::size_t deferred_promotions = 0;
  /// True when the steady-state budget forced fewer channels per title or a
  /// smaller hot set than configured (overload degradation).
  bool degraded = false;
  /// Tail channels implied by this allocation while the reserve drains.
  int tail_channels = 0;
};

class ChannelAllocator {
 public:
  /// Preconditions (std::invalid_argument): thresholds must differ with
  /// promote_ratio > 1 >= demote_ratio > 0; positive rates and counts; the
  /// budget must fit at least one tail channel.
  explicit ChannelAllocator(AllocatorConfig config);

  /// Re-solves the split. `weights` is the estimator's per-title weight
  /// vector; `current_hot` the active hot set; `draining` titles still
  /// holding channels from an earlier demotion; `reserved_bandwidth` the
  /// bandwidth those drains hold (Mb/s).
  [[nodiscard]] Allocation reallocate(const std::vector<double>& weights,
                                      const std::vector<std::size_t>& current_hot,
                                      const std::vector<std::size_t>& draining,
                                      double reserved_bandwidth) const;

  /// The steady-state degraded (K, H) pair for the configured budget:
  /// channels per title first, then hot-set size. Exposed for tests and for
  /// sizing the initial allocation.
  struct SteadyCapacity {
    int channels_per_video = 0;
    std::size_t hot_titles = 0;
    bool degraded = false;
  };
  [[nodiscard]] SteadyCapacity steady_capacity() const;

  [[nodiscard]] const AllocatorConfig& config() const noexcept {
    return config_;
  }

 private:
  AllocatorConfig config_;
};

}  // namespace vodbcast::ctrl
