#include "ctrl/adaptive.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>

#include "obs/log.hpp"
#include "schemes/skyscraper.hpp"
#include "sim/event_queue.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"
#include "workload/request.hpp"

namespace vodbcast::ctrl {

namespace {

enum class TitleMode : std::uint8_t { kTail, kHot, kDraining };

struct HotState {
  double plan_start = 0.0;
  double slot = 0.0;          ///< Segment-1 period D1, minutes
  int channels = 0;
  double active_until = 0.0;  ///< latest reception finish on this plan
};

/// Rank -> title permutation for the popularity flip, drawn from the run
/// seed (Fisher-Yates over util::Rng) so the scenario replays bit-identically.
std::vector<core::VideoId> flip_permutation(std::size_t n,
                                            std::uint64_t seed) {
  std::vector<core::VideoId> perm(n);
  for (std::size_t i = 0; i < n; ++i) {
    perm[i] = static_cast<core::VideoId>(i);
  }
  util::Rng rng(seed);
  for (std::size_t i = n - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(rng.next_below(i + 1));
    std::swap(perm[i], perm[j]);
  }
  return perm;
}

/// The whole per-run state; event callbacks capture one pointer (plus a
/// small Request) and stay inside the event engine's inline-capture budget.
struct AdaptiveSim {
  const batching::BatchingPolicy& policy;
  const AdaptiveConfig& config;
  AdaptiveReport& report;
  sim::EventQueue& events;
  obs::ProbeScope& probes;
  PopularityEstimator& estimator;
  const ChannelAllocator& allocator;
  obs::Sink* sink;

  std::vector<TitleMode> mode;
  std::vector<HotState> hot;
  batching::WaitQueues queues;
  /// Current true per-title access probability (flips mid-run).
  std::vector<double> true_popularity;
  std::vector<core::VideoId> post_flip_title_of_rank;

  double slot_d1 = 0.0;        ///< D1 at the (possibly degraded) K
  int channels_per_video = 0;  ///< K after steady-state degradation
  std::size_t capacity_hot = 0;
  double hot_bandwidth = 0.0;       ///< Mb/s held by active hot titles
  double reserved_bandwidth = 0.0;  ///< Mb/s held by draining titles
  int tail_capacity = 0;
  int tail_busy = 0;

  bool flipped = false;
  std::int64_t epochs_since_flip = -1;  ///< -1 until the flip lands
  std::uint64_t next_client = 0;
  /// Span id of the current control epoch; drain spans and the sessions a
  /// reallocation absorbs parent onto it (0 before the first allocation).
  std::uint64_t epoch_span = 0;

  // Instrument handles, resolved once; null without a sink.
  obs::Counter* realloc_counter = nullptr;
  obs::Counter* promote_counter = nullptr;
  obs::Counter* demote_counter = nullptr;
  obs::Counter* drain_counter = nullptr;
  obs::Gauge* hot_gauge = nullptr;
  obs::Gauge* tail_gauge = nullptr;
  obs::Gauge* degraded_gauge = nullptr;
  obs::Gauge* channels_gauge = nullptr;
  // Per-title mode-transition counters (empty without a sink), indexed by
  // video id — which titles churn is the control plane's key diagnostic.
  std::vector<obs::Counter*> promote_by_title{};
  std::vector<obs::Counter*> demote_by_title{};
  std::vector<obs::Counter*> drain_by_title{};

  [[nodiscard]] double channel_rate() const {
    return config.video.display_rate.v;
  }

  void refresh_tail_capacity() {
    tail_capacity = static_cast<int>(
        (config.total_bandwidth.v - hot_bandwidth - reserved_bandwidth) /
            channel_rate() +
        1e-9);
    if (tail_gauge != nullptr) {
      tail_gauge->set(static_cast<double>(tail_capacity));
    }
  }

  void trace(obs::EventKind kind, double t, std::uint64_t video,
             std::uint64_t client, double value, std::int32_t channel = 0) {
    if (sink != nullptr) {
      sink->trace.record(obs::TraceEvent{
          .sim_time_min = t,
          .kind = kind,
          .channel = channel,
          .video = video,
          .client = client,
          .value = value,
      });
    }
  }

  /// Serves one hot request: tune to the next Segment-1 slot of the title's
  /// current plan (clients only ever join broadcast beginnings).
  void serve_broadcast(core::VideoId video, double now) {
    HotState& state = hot[video];
    const double elapsed = now - state.plan_start;
    double slots = std::ceil(elapsed / state.slot);
    double tune_at = state.plan_start + slots * state.slot;
    if (tune_at < now) {  // float guard: never tune into the past
      tune_at += state.slot;
    }
    const double wait = tune_at - now;
    report.wait_minutes.add(wait);
    report.hot_wait_minutes.add(wait);
    ++report.served_hot;
    const double finish = tune_at + config.video.duration.v;
    state.active_until = std::max(state.active_until, finish);
    const std::uint64_t client = ++next_client;
    trace(obs::EventKind::kClientArrival, now, video, client, 0.0);
    trace(obs::EventKind::kTuneIn, tune_at, video, client, wait);
    trace(obs::EventKind::kSegmentDownloadStart, tune_at, video, client,
          config.video.duration.v);
    if (sink != nullptr) {
      const auto session = sink->spans.record(obs::Span{
          .start_min = now,
          .end_min = finish,
          .phase = obs::SpanPhase::kSession,
          .channel = 0,
          .video = video,
          .client = client,
          .value = wait,
          .label = {},
      });
      sink->spans.record(obs::Span{
          .parent = session,
          .start_min = now,
          .end_min = tune_at,
          .phase = obs::SpanPhase::kTune,
          .channel = 0,
          .video = video,
          .client = client,
          .value = wait,
          .label = {},
      });
      sink->spans.record(obs::Span{
          .parent = session,
          .start_min = tune_at,
          .end_min = finish,
          .phase = obs::SpanPhase::kPlayback,
          .channel = hot[video].channels,
          .video = video,
          .client = client,
          .value = config.video.duration.v,
          .label = {},
      });
    }
  }

  /// Serves tail batches while channels and pending queues allow.
  void try_dispatch() {
    while (tail_busy < tail_capacity) {
      const auto video = policy.pick(queues);
      if (!video.has_value()) {
        return;
      }
      const double now = events.now();
      auto& queue = queues[*video];
      VB_ASSERT(!queue.empty());
      for (const auto& r : queue) {
        const double wait = now - r.arrival.v;
        report.wait_minutes.add(wait);
        report.tail_wait_minutes.add(wait);
        if (sink != nullptr) {
          const auto client = ++next_client;
          const double end = now + config.video.duration.v;
          const auto session = sink->spans.record(obs::Span{
              .start_min = r.arrival.v,
              .end_min = end,
              .phase = obs::SpanPhase::kSession,
              .channel = 0,
              .video = *video,
              .client = client,
              .value = wait,
              .label = {},
          });
          sink->spans.record(obs::Span{
              .parent = session,
              .start_min = r.arrival.v,
              .end_min = now,
              .phase = obs::SpanPhase::kQueueWait,
              .channel = 0,
              .video = *video,
              .client = client,
              .value = wait,
              .label = {},
          });
          sink->spans.record(obs::Span{
              .parent = session,
              .start_min = now,
              .end_min = end,
              .phase = obs::SpanPhase::kPlayback,
              .channel = tail_busy + 1,
              .video = *video,
              .client = client,
              .value = config.video.duration.v,
              .label = {},
          });
        }
      }
      const auto batch = queue.size();
      report.served_tail += batch;
      queue.clear();
      ++tail_busy;
      trace(obs::EventKind::kBatchFire, now, *video, 0,
            static_cast<double>(batch), tail_busy);
      events.schedule(now + config.video.duration.v, [this] {
        --tail_busy;
        try_dispatch();
      });
    }
  }

  void arrival(const workload::Request& request) {
    const double now = request.arrival.v;
    probes.advance(now);
    estimator.observe(request.video, request.arrival);
    if (mode[request.video] == TitleMode::kHot) {
      serve_broadcast(request.video, now);
      return;
    }
    queues[request.video].push_back(batching::PendingRequest{
        .arrival = request.arrival,
        .renege_at = core::Minutes{1e300},
    });
    try_dispatch();
  }

  /// Promotes `video` onto a fresh plan starting now and absorbs its
  /// pending tail queue (those subscribers tune to the first slot).
  void promote(std::size_t video, double now) {
    mode[video] = TitleMode::kHot;
    hot[video] = HotState{
        .plan_start = now,
        .slot = slot_d1,
        .channels = channels_per_video,
        .active_until = now,
    };
    hot_bandwidth += channel_rate() * channels_per_video;
    ++report.promotions;
    if (!promote_by_title.empty()) {
      promote_by_title[video]->add();
    }
    trace(obs::EventKind::kPromote, now, video, 0,
          static_cast<double>(channels_per_video));
    auto& queue = queues[video];
    if (!queue.empty()) {
      for (const auto& r : queue) {
        const double wait = now - r.arrival.v;
        report.wait_minutes.add(wait);
        report.hot_wait_minutes.add(wait);
        ++report.served_hot;
        const std::uint64_t client = ++next_client;
        trace(obs::EventKind::kTuneIn, now, video, client, wait);
        trace(obs::EventKind::kSegmentDownloadStart, now, video, client,
              config.video.duration.v);
        if (sink != nullptr) {
          // The promotion itself ended these waits: parent the absorbed
          // sessions onto the epoch span that triggered it.
          const double end = now + config.video.duration.v;
          const auto session = sink->spans.record(obs::Span{
              .parent = epoch_span,
              .start_min = r.arrival.v,
              .end_min = end,
              .phase = obs::SpanPhase::kSession,
              .channel = 0,
              .video = video,
              .client = client,
              .value = wait,
              .label = {},
          });
          sink->spans.record(obs::Span{
              .parent = session,
              .start_min = r.arrival.v,
              .end_min = now,
              .phase = obs::SpanPhase::kQueueWait,
              .channel = 0,
              .video = video,
              .client = client,
              .value = wait,
              .label = {},
          });
          sink->spans.record(obs::Span{
              .parent = session,
              .start_min = now,
              .end_min = end,
              .phase = obs::SpanPhase::kPlayback,
              .channel = channels_per_video,
              .video = video,
              .client = client,
              .value = config.video.duration.v,
              .label = {},
          });
        }
      }
      hot[video].active_until = now + config.video.duration.v;
      queue.clear();
    }
  }

  /// Demotes `video`: new arrivals route to the tail immediately, but the
  /// channels stay allocated until every tuned-in client finishes on the
  /// old plan; only then does drain_complete hand the bandwidth over.
  void demote(std::size_t video, double now) {
    mode[video] = TitleMode::kDraining;
    const double held = channel_rate() * hot[video].channels;
    hot_bandwidth -= held;
    reserved_bandwidth += held;
    const double drain_at = std::max(hot[video].active_until, now);
    ++report.demotions;
    if (!demote_by_title.empty()) {
      demote_by_title[video]->add();
    }
    trace(obs::EventKind::kDemote, now, video, 0, drain_at - now);
    if (sink != nullptr) {
      sink->spans.record(obs::Span{
          .parent = epoch_span,
          .start_min = now,
          .end_min = drain_at,
          .phase = obs::SpanPhase::kDrain,
          .channel = hot[video].channels,
          .video = video,
          .client = 0,
          .value = drain_at - now,
          .label = {},
      });
    }
    events.schedule(drain_at, [this, video, now] {
      finish_drain(video, now);
    });
  }

  void finish_drain(std::size_t video, double demoted_at) {
    VB_ASSERT(mode[video] == TitleMode::kDraining);
    const double now = events.now();
    mode[video] = TitleMode::kTail;
    reserved_bandwidth -= channel_rate() * hot[video].channels;
    hot[video] = HotState{};
    ++report.drains_completed;
    if (drain_counter != nullptr) {
      drain_counter->add();
    }
    if (!drain_by_title.empty()) {
      drain_by_title[video]->add();
    }
    trace(obs::EventKind::kDrainComplete, now, video, 0, now - demoted_at);
    refresh_tail_capacity();
    try_dispatch();
  }

  /// Minutes of [a, b) the fault plan keeps title `v`'s broadcast bank
  /// dark (episode channels key hot titles as title id + 1).
  [[nodiscard]] double outage_overlap(double a, double b,
                                      std::size_t v) const {
    double total = 0.0;
    for (const auto& e : config.injector->plan().episodes()) {
      if (e.kind == fault::EpisodeKind::kChannelOutage &&
          e.hits_channel(static_cast<int>(v) + 1)) {
        total += e.overlap_min(a, b);
      }
    }
    return total;
  }

  /// A server-restart episode: every hot plan starts fresh at the restart
  /// instant, so the Segment-1 slot clock resets and subsequent arrivals
  /// tune against the new plan. (Per-client replay of the cut sessions is
  /// the packet layer's job; the control plane models the schedule reset.)
  void server_restart(std::size_t episode) {
    const double now = events.now();
    ++report.fault_restarts;
    for (std::size_t v = 0; v < mode.size(); ++v) {
      if (mode[v] == TitleMode::kHot) {
        hot[v].plan_start = now;
      }
    }
    if (sink != nullptr) {
      sink->metrics.counter("fault.restarts").add();
    }
    trace(obs::EventKind::kFaultHit, now, 0, 0,
          static_cast<double>(episode), -1);
  }

  /// Graceful degradation: a sustained channel outage on a hot title makes
  /// its broadcast bank undeliverable, so the controller demotes it through
  /// the normal drain machinery — demand re-routes to the tail until the
  /// channel heals and the allocator re-promotes the title on merit.
  void force_outage_demotions(double now) {
    if (config.injector == nullptr || config.injector->plan().empty() ||
        config.epoch.v <= 0.0) {
      return;
    }
    const double window_begin = std::max(0.0, now - config.epoch.v);
    for (const auto v : titles_in_mode(TitleMode::kHot)) {
      const double dark = outage_overlap(window_begin, now, v);
      if (dark < 0.5 * config.epoch.v) {
        continue;
      }
      demote(v, now);
      ++report.fault_forced_demotions;
      if (sink != nullptr) {
        sink->metrics.counter("fault.forced_demotions").add();
      }
      trace(obs::EventKind::kFaultDegraded, now, v, 0, dark,
            static_cast<int>(v) + 1);
    }
  }

  [[nodiscard]] std::vector<std::size_t> titles_in_mode(TitleMode m) const {
    std::vector<std::size_t> out;
    for (std::size_t v = 0; v < mode.size(); ++v) {
      if (mode[v] == m) {
        out.push_back(v);
      }
    }
    return out;
  }

  /// One control epoch: re-solve the split and apply the transition diff.
  void run_epoch() {
    const double now = events.now();
    probes.advance(now);
    ++report.epochs;
    if (flipped) {
      ++epochs_since_flip;
    }
    const auto weights = estimator.weights_at(core::Minutes{now});
    const auto current = titles_in_mode(TitleMode::kHot);
    const auto draining = titles_in_mode(TitleMode::kDraining);
    const auto alloc =
        allocator.reallocate(weights, current, draining, reserved_bandwidth);
    if (sink != nullptr) {
      // The epoch span covers this control interval; the drains it starts
      // and the sessions its promotions absorb parent onto it.
      epoch_span = sink->spans.record(obs::Span{
          .start_min = now,
          .end_min = std::min(now + config.epoch.v, config.horizon.v),
          .phase = obs::SpanPhase::kEpoch,
          .channel = alloc.channels_per_video,
          .video = 0,
          .client = 0,
          .value = static_cast<double>(alloc.hot.size()),
          .label = {},
      });
    }
    for (const auto v : alloc.demoted) {
      demote(v, now);
    }
    for (const auto v : alloc.promoted) {
      promote(v, now);
    }
    report.deferred_promotions += alloc.deferred_promotions;
    const bool changed = !alloc.promoted.empty() || !alloc.demoted.empty();
    if (changed) {
      ++report.reallocs;
      if (realloc_counter != nullptr) {
        realloc_counter->add();
      }
      if (promote_counter != nullptr) {
        promote_counter->add(alloc.promoted.size());
        demote_counter->add(alloc.demoted.size());
      }
    }
    const bool degraded_now =
        alloc.degraded || alloc.deferred_promotions > 0;
    if (degraded_now) {
      ++report.degraded_epochs;
    }
    if (sink != nullptr) {
      hot_gauge->set(static_cast<double>(alloc.hot.size()));
      degraded_gauge->set(degraded_now ? 1.0 : 0.0);
      channels_gauge->set(static_cast<double>(alloc.channels_per_video));
    }
    trace(obs::EventKind::kRealloc, now, 0, 0,
          static_cast<double>(alloc.hot.size()), alloc.channels_per_video);
    force_outage_demotions(now);
    refresh_tail_capacity();
    check_convergence(alloc.hot);
    try_dispatch();
    const double next = now + config.epoch.v;
    if (next < config.horizon.v) {
      events.schedule(next, [this] { run_epoch(); });
    }
  }

  /// After the flip, the hot set has re-converged once it carries
  /// convergence_fraction of the demand mass of the oracle top-H set.
  void check_convergence(const std::vector<std::size_t>& hot_set) {
    if (!flipped || report.converged_epochs_after_flip >= 0 ||
        epochs_since_flip < 0) {
      return;
    }
    std::vector<double> sorted = true_popularity;
    std::nth_element(
        sorted.begin(),
        sorted.begin() + static_cast<std::ptrdiff_t>(
                             std::min(capacity_hot, sorted.size()) - 1),
        sorted.end(), std::greater<>());
    double ideal_mass = 0.0;
    for (std::size_t i = 0; i < std::min(capacity_hot, sorted.size()); ++i) {
      ideal_mass += sorted[i];
    }
    double hot_mass = 0.0;
    for (const auto v : hot_set) {
      hot_mass += true_popularity[v];
    }
    if (ideal_mass <= 0.0 ||
        hot_mass >= config.convergence_fraction * ideal_mass) {
      report.converged_epochs_after_flip = epochs_since_flip;
    }
  }
};

}  // namespace

AdaptiveReport simulate_adaptive(const batching::BatchingPolicy& policy,
                                 const AdaptiveConfig& config) {
  VB_EXPECTS(config.catalog_size >= 1);
  VB_EXPECTS(config.hot_titles >= 1);
  VB_EXPECTS(config.hot_titles <= config.catalog_size);
  VB_EXPECTS(config.broadcast_channels_per_video >= 1);
  VB_EXPECTS(config.horizon.v > 0.0);
  VB_EXPECTS(config.arrivals_per_minute > 0.0);
  VB_EXPECTS(config.convergence_fraction > 0.0 &&
             config.convergence_fraction <= 1.0);

  const ChannelAllocator allocator(AllocatorConfig{
      .total_bandwidth = config.total_bandwidth,
      .channel_rate = config.video.display_rate.v,
      .target_hot_titles = config.hot_titles,
      .channels_per_video = config.broadcast_channels_per_video,
      .min_tail_channels = config.min_tail_channels,
      .promote_ratio = config.promote_ratio,
      .demote_ratio = config.demote_ratio,
  });
  const auto capacity = allocator.steady_capacity();
  VB_EXPECTS_MSG(capacity.hot_titles >= 1,
                 "budget cannot broadcast even one hot title");

  // D1 at the (possibly degraded) K: the guaranteed worst-case hot wait.
  const schemes::SkyscraperScheme sb(config.sb_width);
  const schemes::DesignInput sb_input{
      .server_bandwidth =
          core::MbitPerSec{config.video.display_rate.v *
                           capacity.channels_per_video},
      .num_videos = 1,
      .video = config.video,
  };
  const auto evaluation = sb.evaluate(sb_input);
  VB_EXPECTS(evaluation.has_value());
  const double slot_d1 = evaluation->metrics.access_latency.v;

  // Request stream: Zipf over *ranks*; the rank->title map is the identity
  // until flip_at, then a seeded shuffle. Mapping per request up front keeps
  // the event loop free of scenario branches.
  const auto rank_probs =
      workload::zipf_probabilities(config.catalog_size, config.zipf_theta);
  workload::RequestGenerator generator(rank_probs, config.arrivals_per_minute,
                                       util::Rng(config.seed));
  auto requests = generator.generate_until(config.horizon);
  const bool flips = config.flip_at.v >= 0.0 &&
                     config.flip_at.v < config.horizon.v;
  std::vector<core::VideoId> perm;
  if (flips) {
    perm = flip_permutation(config.catalog_size, config.seed ^ 0x9e3779b9u);
    for (auto& r : requests) {
      if (r.arrival.v >= config.flip_at.v) {
        r.video = perm[r.video];
      }
    }
  }

  AdaptiveReport report;
  report.channels_per_video = capacity.channels_per_video;
  report.broadcast_worst_latency = core::Minutes{slot_d1};
  report.degraded = capacity.degraded;

  PopularityEstimator estimator(config.catalog_size, config.half_life);
  estimator.seed_prior(rank_probs, config.arrivals_per_minute);

  sim::EventQueue events;
  events.attach_sink(config.sink);
  obs::ProbeScope probes(config.sampler);

  AdaptiveSim state{
      .policy = policy,
      .config = config,
      .report = report,
      .events = events,
      .probes = probes,
      .estimator = estimator,
      .allocator = allocator,
      .sink = config.sink,
      .mode = std::vector<TitleMode>(config.catalog_size, TitleMode::kTail),
      .hot = std::vector<HotState>(config.catalog_size),
      .queues = batching::WaitQueues(config.catalog_size),
      .true_popularity = rank_probs,
      .post_flip_title_of_rank = perm,
      .slot_d1 = slot_d1,
      .channels_per_video = capacity.channels_per_video,
      .capacity_hot = capacity.hot_titles,
  };
  if (config.sink != nullptr) {
    auto& metrics = config.sink->metrics;
    state.realloc_counter = &metrics.counter("ctrl.realloc");
    state.promote_counter = &metrics.counter("ctrl.promotions");
    state.demote_counter = &metrics.counter("ctrl.demotions");
    state.drain_counter = &metrics.counter("ctrl.drains_completed");
    state.hot_gauge = &metrics.gauge("ctrl.hot_titles");
    state.tail_gauge = &metrics.gauge("ctrl.tail_channels");
    state.degraded_gauge = &metrics.gauge("ctrl.degraded");
    state.channels_gauge = &metrics.gauge("ctrl.channels_per_title");
    // Per-title transition counters, resolved once and indexed by video id
    // inside the control loop. Families sized to the catalog: no overflow.
    auto& promote_family = metrics.counter_family(
        "ctrl.title.promotions", {"title"}, config.catalog_size + 1);
    auto& demote_family = metrics.counter_family(
        "ctrl.title.demotions", {"title"}, config.catalog_size + 1);
    auto& drain_family = metrics.counter_family(
        "ctrl.title.drains", {"title"}, config.catalog_size + 1);
    state.promote_by_title.resize(config.catalog_size);
    state.demote_by_title.resize(config.catalog_size);
    state.drain_by_title.resize(config.catalog_size);
    for (std::size_t video = 0; video < config.catalog_size; ++video) {
      state.promote_by_title[video] = &promote_family.with_ids({video});
      state.demote_by_title[video] = &demote_family.with_ids({video});
      state.drain_by_title[video] = &drain_family.with_ids({video});
    }
  }

  probes.add("ctrl.hot_titles", [&state] {
    return static_cast<double>(state.titles_in_mode(TitleMode::kHot).size());
  });
  probes.add("ctrl.tail_channels", [&state] {
    return static_cast<double>(state.tail_capacity);
  });
  probes.add("ctrl.draining_titles", [&state] {
    return static_cast<double>(
        state.titles_in_mode(TitleMode::kDraining).size());
  });
  probes.add("ctrl.queue_depth", [&state] {
    std::size_t total = 0;
    for (const auto& queue : state.queues) {
      total += queue.size();
    }
    return static_cast<double>(total);
  });

  // Initial allocation from the prior ranks (no epoch counted): the top
  // capacity_hot titles go hot on plans starting at t = 0.
  {
    const auto alloc = allocator.reallocate(
        estimator.weights_at(core::Minutes{0.0}), {}, {}, 0.0);
    for (const auto v : alloc.promoted) {
      state.mode[v] = TitleMode::kHot;
      state.hot[v] = HotState{
          .plan_start = 0.0,
          .slot = slot_d1,
          .channels = capacity.channels_per_video,
          .active_until = 0.0,
      };
      state.hot_bandwidth +=
          state.channel_rate() * capacity.channels_per_video;
    }
    state.refresh_tail_capacity();
    if (config.sink != nullptr) {
      state.hot_gauge->set(static_cast<double>(alloc.hot.size()));
      state.degraded_gauge->set(capacity.degraded ? 1.0 : 0.0);
      state.channels_gauge->set(
          static_cast<double>(capacity.channels_per_video));
    }
    state.trace(obs::EventKind::kRealloc, 0.0, 0, 0,
                static_cast<double>(alloc.hot.size()),
                capacity.channels_per_video);
    if (config.sink != nullptr) {
      // The initial allocation opens the first control interval.
      const double first_end =
          (config.epoch.v > 0.0 && config.epoch.v < config.horizon.v)
              ? config.epoch.v
              : config.horizon.v;
      state.epoch_span = config.sink->spans.record(obs::Span{
          .start_min = 0.0,
          .end_min = first_end,
          .phase = obs::SpanPhase::kEpoch,
          .channel = capacity.channels_per_video,
          .video = 0,
          .client = 0,
          .value = static_cast<double>(alloc.hot.size()),
          .label = {},
      });
    }
    obs::logf(obs::LogLevel::kDebug,
              "ctrl: initial hot set %zu titles x %d channels (D1=%.3f min,"
              " tail %d channels%s)",
              alloc.hot.size(), capacity.channels_per_video, slot_d1,
              state.tail_capacity, capacity.degraded ? ", degraded" : "");
  }

  for (const auto& request : requests) {
    VB_EXPECTS(request.video < config.catalog_size);
    events.schedule(request.arrival.v,
                    [sim = &state, request] { sim->arrival(request); });
  }
  if (flips) {
    events.schedule(config.flip_at.v, [sim = &state, &rank_probs] {
      sim->flipped = true;
      sim->epochs_since_flip = 0;
      std::vector<double> flipped(sim->true_popularity.size());
      for (std::size_t rank = 0; rank < flipped.size(); ++rank) {
        flipped[sim->post_flip_title_of_rank[rank]] = rank_probs[rank];
      }
      sim->true_popularity = std::move(flipped);
    });
  }
  if (config.injector != nullptr && !config.injector->plan().empty()) {
    if (config.sink != nullptr) {
      fault::trace_plan(*config.sink, config.injector->plan());
    }
    const auto& episodes = config.injector->plan().episodes();
    for (std::size_t i = 0; i < episodes.size(); ++i) {
      if (episodes[i].kind == fault::EpisodeKind::kServerRestart &&
          episodes[i].start_min < config.horizon.v) {
        events.schedule(episodes[i].start_min,
                        [sim = &state, i] { sim->server_restart(i); });
      }
    }
  }
  const bool adaptive = config.epoch.v > 0.0;
  if (adaptive && config.epoch.v < config.horizon.v) {
    events.schedule(config.epoch.v, [sim = &state] { sim->run_epoch(); });
  }

  events.run_until(config.horizon.v);
  probes.advance(config.horizon.v);

  std::size_t unserved = 0;
  for (const auto& queue : state.queues) {
    unserved += queue.size();
  }
  report.unserved = unserved;
  report.final_hot = state.titles_in_mode(TitleMode::kHot);
  if (config.sink != nullptr) {
    auto& metrics = config.sink->metrics;
    metrics.counter("ctrl.served_hot").add(report.served_hot);
    metrics.counter("ctrl.served_tail").add(report.served_tail);
    metrics.counter("ctrl.epochs").add(report.epochs);
    metrics.counter("ctrl.deferred_promotions")
        .add(report.deferred_promotions);
    metrics.counter("ctrl.degraded_epochs").add(report.degraded_epochs);
    metrics.counter("ctrl.unserved_at_horizon").add(report.unserved);
  }
  obs::logf(obs::LogLevel::kDebug,
            "ctrl: served hot=%llu tail=%llu, %llu realloc(s), "
            "%llu promotion(s), %llu demotion(s), %llu drain(s), "
            "mean wait %.3f min",
            static_cast<unsigned long long>(report.served_hot),
            static_cast<unsigned long long>(report.served_tail),
            static_cast<unsigned long long>(report.reallocs),
            static_cast<unsigned long long>(report.promotions),
            static_cast<unsigned long long>(report.demotions),
            static_cast<unsigned long long>(report.drains_completed),
            report.mean_wait_minutes());
  return report;
}

namespace {

/// Folds `other` into `into` in replication order (see header contract).
void merge_reports(AdaptiveReport& into, const AdaptiveReport& other) {
  into.wait_minutes.merge(other.wait_minutes);
  into.hot_wait_minutes.merge(other.hot_wait_minutes);
  into.tail_wait_minutes.merge(other.tail_wait_minutes);
  into.served_hot += other.served_hot;
  into.served_tail += other.served_tail;
  into.unserved += other.unserved;
  into.epochs += other.epochs;
  into.reallocs += other.reallocs;
  into.promotions += other.promotions;
  into.demotions += other.demotions;
  into.drains_completed += other.drains_completed;
  into.deferred_promotions += other.deferred_promotions;
  into.degraded_epochs += other.degraded_epochs;
  into.fault_forced_demotions += other.fault_forced_demotions;
  into.fault_restarts += other.fault_restarts;
  into.degraded = into.degraded || other.degraded;
  // Convergence merges pessimistically: -1 (never converged) dominates,
  // otherwise the slowest replication defines the bound.
  if (into.converged_epochs_after_flip < 0 ||
      other.converged_epochs_after_flip < 0) {
    into.converged_epochs_after_flip =
        std::min<std::int64_t>(into.converged_epochs_after_flip,
                               other.converged_epochs_after_flip);
  } else {
    into.converged_epochs_after_flip =
        std::max(into.converged_epochs_after_flip,
                 other.converged_epochs_after_flip);
  }
}

}  // namespace

ReplicatedAdaptiveReport simulate_adaptive_replicated(
    const batching::BatchingPolicy& policy, const AdaptiveConfig& config,
    std::size_t reps, util::TaskPool* pool) {
  VB_EXPECTS(reps >= 1);

  // Same seed rule as sim::simulate_replicated: replication r consumes the
  // (r+1)-th output of SplitMix64(config.seed).
  util::SplitMix64 seed_stream(config.seed);
  std::vector<std::uint64_t> seeds(reps);
  for (auto& seed : seeds) {
    seed = seed_stream.next();
  }

  std::vector<AdaptiveReport> reports(reps);
  std::vector<std::unique_ptr<obs::Sink>> sinks(reps);
  util::parallel_for_each(pool, reps, [&](std::size_t r) {
    AdaptiveConfig rep_config = config;
    rep_config.seed = seeds[r];
    rep_config.sampler = nullptr;  // R interleaved clocks are meaningless
    rep_config.sink = nullptr;
    if (config.sink != nullptr) {
      sinks[r] = std::make_unique<obs::Sink>(config.sink->trace.capacity(),
                                             config.sink->spans.capacity());
      rep_config.sink = sinks[r].get();
    }
    reports[r] = simulate_adaptive(policy, rep_config);
  });

  ReplicatedAdaptiveReport out;
  out.replications = reps;
  out.merged = reports.front();
  out.replication_mean_wait.add(reports.front().mean_wait_minutes());
  for (std::size_t r = 1; r < reps; ++r) {
    merge_reports(out.merged, reports[r]);
    out.replication_mean_wait.add(reports[r].mean_wait_minutes());
  }
  if (config.sink != nullptr) {
    for (std::size_t r = 0; r < reps; ++r) {
      config.sink->metrics.merge_from(sinks[r]->metrics);
      config.sink->trace.merge_from(sinks[r]->trace);
      config.sink->spans.merge_from(sinks[r]->spans);
    }
  }
  if (reps >= 2) {
    out.wait_mean_ci95 = 1.96 * out.replication_mean_wait.stddev() /
                         std::sqrt(static_cast<double>(reps));
  }
  return out;
}

}  // namespace vodbcast::ctrl
