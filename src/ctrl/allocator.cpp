#include "ctrl/allocator.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/contracts.hpp"

namespace vodbcast::ctrl {

namespace {

/// Titles sorted by weight descending, lower id first on ties.
std::vector<std::size_t> by_weight(const std::vector<double>& weights,
                                   const std::vector<std::size_t>& titles) {
  std::vector<std::size_t> order = titles;
  std::stable_sort(order.begin(), order.end(),
                   [&weights](std::size_t a, std::size_t b) {
                     if (weights[a] != weights[b]) {
                       return weights[a] > weights[b];
                     }
                     return a < b;
                   });
  return order;
}

}  // namespace

ChannelAllocator::ChannelAllocator(AllocatorConfig config)
    : config_(config) {
  if (!(config_.promote_ratio > 1.0) || !(config_.demote_ratio > 0.0) ||
      !(config_.demote_ratio <= 1.0) ||
      !(config_.promote_ratio > config_.demote_ratio)) {
    throw std::invalid_argument(
        "ChannelAllocator: hysteresis thresholds must differ with "
        "promote_ratio > 1 >= demote_ratio > 0 (got promote_ratio=" +
        std::to_string(config_.promote_ratio) +
        ", demote_ratio=" + std::to_string(config_.demote_ratio) + ")");
  }
  VB_EXPECTS(config_.channel_rate > 0.0);
  VB_EXPECTS(config_.target_hot_titles >= 1);
  VB_EXPECTS(config_.channels_per_video >= 1);
  VB_EXPECTS(config_.min_tail_channels >= 1);
  if (config_.total_bandwidth.v <
      config_.channel_rate * config_.min_tail_channels) {
    throw std::invalid_argument(
        "ChannelAllocator: total bandwidth " +
        std::to_string(config_.total_bandwidth.v) +
        " Mb/s cannot carry the " +
        std::to_string(config_.min_tail_channels) +
        "-channel tail floor at " + std::to_string(config_.channel_rate) +
        " Mb/s per channel");
  }
}

ChannelAllocator::SteadyCapacity ChannelAllocator::steady_capacity() const {
  const double b = config_.channel_rate;
  const double tail_floor = b * config_.min_tail_channels;
  SteadyCapacity cap;
  cap.channels_per_video = config_.channels_per_video;
  cap.hot_titles = config_.target_hot_titles;
  // Shrink channels per title first (bounded worst-case latency rises but
  // every hot title keeps its guarantee), then the hot set itself.
  while (cap.hot_titles >= 1 &&
         b * cap.channels_per_video * static_cast<double>(cap.hot_titles) +
                 tail_floor >
             config_.total_bandwidth.v) {
    if (cap.channels_per_video > 1) {
      --cap.channels_per_video;
    } else {
      --cap.hot_titles;
    }
  }
  cap.degraded = cap.channels_per_video < config_.channels_per_video ||
                 cap.hot_titles < config_.target_hot_titles;
  return cap;
}

Allocation ChannelAllocator::reallocate(
    const std::vector<double>& weights,
    const std::vector<std::size_t>& current_hot,
    const std::vector<std::size_t>& draining,
    double reserved_bandwidth) const {
  const auto cap = steady_capacity();
  const double b = config_.channel_rate;

  Allocation out;
  out.channels_per_video = cap.channels_per_video;
  out.degraded = cap.degraded;

  // Candidate pool: everything not currently draining. A draining title
  // cannot be re-promoted until its old plan has fully drained, so it never
  // competes this epoch.
  std::vector<bool> is_draining(weights.size(), false);
  for (const auto v : draining) {
    VB_ASSERT(v < weights.size());
    is_draining[v] = true;
  }
  std::vector<bool> is_hot(weights.size(), false);
  for (const auto v : current_hot) {
    VB_ASSERT(v < weights.size());
    VB_ASSERT(!is_draining[v]);
    is_hot[v] = true;
  }

  // Start from the incumbents, strongest first; capacity shrink demotes the
  // weakest without hysteresis (the budget decided, not the ranks).
  std::vector<std::size_t> hot = by_weight(weights, current_hot);
  while (hot.size() > cap.hot_titles) {
    out.demoted.push_back(hot.back());
    is_hot[hot.back()] = false;
    hot.pop_back();
  }

  std::vector<std::size_t> outsiders;
  outsiders.reserve(weights.size());
  for (std::size_t v = 0; v < weights.size(); ++v) {
    if (!is_hot[v] && !is_draining[v]) {
      outsiders.push_back(v);
    }
  }
  outsiders = by_weight(weights, outsiders);

  // Hysteresis swaps: the strongest outsider challenges the weakest
  // incumbent; both thresholds must hold. Each accepted swap strictly
  // raises the hot set's minimum weight, so this terminates.
  std::size_t next_outsider = 0;
  while (!hot.empty() && next_outsider < outsiders.size()) {
    const std::size_t incumbent = hot.back();
    const std::size_t challenger = outsiders[next_outsider];
    const double w_in = weights[incumbent];
    const double w_ch = weights[challenger];
    const bool promote = w_ch >= config_.promote_ratio * w_in;
    const bool demote = w_in <= config_.demote_ratio * w_ch;
    if (!(promote && demote)) {
      break;  // ordered by weight: no later pair can pass either
    }
    hot.pop_back();
    out.demoted.push_back(incumbent);
    is_hot[incumbent] = false;
    // Re-insert the challenger in weight order.
    const auto pos = std::lower_bound(
        hot.begin(), hot.end(), challenger,
        [&weights](std::size_t a, std::size_t bb) {
          if (weights[a] != weights[bb]) {
            return weights[a] > weights[bb];
          }
          return a < bb;
        });
    hot.insert(pos, challenger);
    is_hot[challenger] = true;
    out.promoted.push_back(challenger);
    ++next_outsider;
  }

  // Fill genuine vacancies (set smaller than capacity) with the best
  // remaining outsiders — an empty slot needs no hysteresis.
  std::vector<std::size_t> vacancies;
  while (hot.size() < cap.hot_titles && next_outsider < outsiders.size()) {
    const std::size_t challenger = outsiders[next_outsider++];
    if (weights[challenger] <= 0.0) {
      break;  // never broadcast a title nobody asked for
    }
    hot.push_back(challenger);
    is_hot[challenger] = true;
    out.promoted.push_back(challenger);
  }

  // Budget check for the promotions: incumbents keep their channels, the
  // drains keep theirs, the tail keeps its floor. Promotions that do not
  // fit are deferred (weakest first) rather than squeezing the tail.
  double incumbent_bw = 0.0;
  for (const auto v : hot) {
    const bool was_hot =
        std::find(current_hot.begin(), current_hot.end(), v) !=
        current_hot.end();
    if (was_hot) {
      incumbent_bw += b * cap.channels_per_video;
    }
  }
  const double tail_floor = b * config_.min_tail_channels;
  double available = config_.total_bandwidth.v - tail_floor -
                     reserved_bandwidth - incumbent_bw;
  const double per_title = b * cap.channels_per_video;
  std::vector<std::size_t> admitted;
  for (const auto v : by_weight(weights, out.promoted)) {
    if (available + 1e-9 >= per_title) {
      admitted.push_back(v);
      available -= per_title;
    } else {
      ++out.deferred_promotions;
      hot.erase(std::find(hot.begin(), hot.end(), v));
      is_hot[v] = false;
    }
  }
  out.promoted = admitted;

  std::sort(hot.begin(), hot.end());
  std::sort(out.promoted.begin(), out.promoted.end());
  std::sort(out.demoted.begin(), out.demoted.end());
  out.hot = std::move(hot);

  const double hot_bw =
      per_title * static_cast<double>(out.hot.size()) + reserved_bandwidth;
  out.tail_channels = static_cast<int>(
      (config_.total_bandwidth.v - hot_bw) / b + 1e-9);
  VB_ENSURES(out.tail_channels >= config_.min_tail_channels);
  return out;
}

}  // namespace vodbcast::ctrl
