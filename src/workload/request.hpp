// Subscriber request stream: Poisson arrivals + popularity-weighted video
// selection.
#pragma once

#include <vector>

#include "core/units.hpp"
#include "core/video.hpp"
#include "util/rng.hpp"
#include "workload/arrivals.hpp"

namespace vodbcast::workload {

/// One subscriber pressing "play".
struct Request {
  core::Minutes arrival{0.0};
  core::VideoId video = 0;
};

/// Generates the request stream for a catalog.
class RequestGenerator {
 public:
  /// `popularity` must be normalized probabilities per catalog rank.
  RequestGenerator(std::vector<double> popularity, double arrivals_per_minute,
                   util::Rng rng);

  /// The next request in arrival order.
  Request next();

  /// All requests within [0, horizon).
  [[nodiscard]] std::vector<Request> generate_until(core::Minutes horizon);

 private:
  std::vector<double> cdf_;
  PoissonProcess arrivals_;
  util::Rng rng_;
};

}  // namespace vodbcast::workload
