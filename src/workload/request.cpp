#include "workload/request.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace vodbcast::workload {

RequestGenerator::RequestGenerator(std::vector<double> popularity,
                                   double arrivals_per_minute, util::Rng rng)
    : arrivals_(arrivals_per_minute, rng.fork()), rng_(rng.fork()) {
  VB_EXPECTS(!popularity.empty());
  double total = 0.0;
  cdf_.reserve(popularity.size());
  for (const double p : popularity) {
    VB_EXPECTS(p >= 0.0);
    total += p;
    cdf_.push_back(total);
  }
  VB_EXPECTS_MSG(std::abs(total - 1.0) < 1e-6,
                 "popularity must be normalized");
  cdf_.back() = 1.0;  // guard against rounding at the top
}

Request RequestGenerator::next() {
  const core::Minutes at = arrivals_.next();
  const double u = rng_.next_double();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  const auto rank = static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - cdf_.begin(),
                               static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
  return Request{at, static_cast<core::VideoId>(rank)};
}

std::vector<Request> RequestGenerator::generate_until(core::Minutes horizon) {
  std::vector<Request> requests;
  while (true) {
    Request r = next();
    if (r.arrival.v >= horizon.v) {
      break;
    }
    requests.push_back(r);
  }
  return requests;
}

}  // namespace vodbcast::workload
