#include "workload/arrivals.hpp"

#include "util/contracts.hpp"

namespace vodbcast::workload {

PoissonProcess::PoissonProcess(double arrivals_per_minute, util::Rng rng)
    : rate_(arrivals_per_minute), rng_(rng) {
  VB_EXPECTS(arrivals_per_minute > 0.0);
}

core::Minutes PoissonProcess::next() {
  now_ += core::Minutes{rng_.next_exponential(rate_)};
  return now_;
}

}  // namespace vodbcast::workload
