// Poisson arrival process for subscriber requests.
#pragma once

#include "core/units.hpp"
#include "util/rng.hpp"

namespace vodbcast::workload {

/// Homogeneous Poisson process; inter-arrival gaps are exponential with the
/// given rate (arrivals per minute).
class PoissonProcess {
 public:
  PoissonProcess(double arrivals_per_minute, util::Rng rng);

  /// Advances to and returns the next arrival time.
  core::Minutes next();

  [[nodiscard]] core::Minutes now() const noexcept { return now_; }
  [[nodiscard]] double rate() const noexcept { return rate_; }

 private:
  double rate_;
  core::Minutes now_{0.0};
  util::Rng rng_;
};

}  // namespace vodbcast::workload
