#include "workload/zipf.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace vodbcast::workload {

std::vector<double> zipf_probabilities(std::size_t n, double theta) {
  VB_EXPECTS(n >= 1);
  VB_EXPECTS(theta >= 0.0 && theta <= 1.0);
  std::vector<double> probs(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    probs[i] = 1.0 / std::pow(static_cast<double>(i + 1), 1.0 + theta);
    total += probs[i];
  }
  for (auto& p : probs) {
    p /= total;
  }
  return probs;
}

std::size_t titles_for_mass(const std::vector<double>& probs, double mass) {
  VB_EXPECTS(!probs.empty());
  VB_EXPECTS(mass >= 0.0 && mass <= 1.0);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    cumulative += probs[i];
    if (cumulative >= mass) {
      return i + 1;
    }
  }
  return probs.size();
}

}  // namespace vodbcast::workload
