// Zipf-like video popularity (paper Section 1).
//
// The paper cites Dan, Sitaram & Shahabuddin's video-store measurements:
// movie popularity follows a Zipf distribution with skew factor 0.271,
// concentrating "most of the demand (80%)" on "a few (10 to 20) very
// popular movies". We model the access probability of the i-th most popular
// of n videos as
//
//     p_i = c / i^(1 + theta),    theta = 0.271,
//
// with c normalizing the sum to 1. The exponent convention is calibrated to
// the paper's own concentration claim: over a typical 100-title store,
// 1 + 0.271 puts 80% of the demand on the top ~18 titles (the classic
// harmonic Zipf, exponent 1, would need ~35, and exponent 1 - 0.271 would
// need ~57 -- neither matches the quoted behaviour).
#pragma once

#include <cstddef>
#include <vector>

namespace vodbcast::workload {

/// The paper's skew factor.
inline constexpr double kPaperSkew = 0.271;

/// Normalized access probabilities for ranks 1..n.
/// Preconditions: n >= 1, 0 <= theta <= 1.
[[nodiscard]] std::vector<double> zipf_probabilities(std::size_t n,
                                                     double theta = kPaperSkew);

/// Smallest k such that the top-k titles carry at least `mass` of the
/// demand (e.g. mass = 0.8 reproduces the paper's "80% on 10-20 movies").
[[nodiscard]] std::size_t titles_for_mass(const std::vector<double>& probs,
                                          double mass);

}  // namespace vodbcast::workload
