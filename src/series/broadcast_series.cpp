#include "series/broadcast_series.hpp"

#include <algorithm>

#include "util/contracts.hpp"
#include "util/math.hpp"

namespace vodbcast::series {

std::vector<std::uint64_t> BroadcastSeries::prefix(int k,
                                                   std::uint64_t width) const {
  VB_EXPECTS(k >= 0);
  VB_EXPECTS(width >= 1);
  std::vector<std::uint64_t> values;
  values.reserve(static_cast<std::size_t>(k));
  // Once the cap binds, every later element is >= width (the series is
  // non-decreasing), so stop evaluating the recurrence — for narrow widths
  // with many channels the raw elements would overflow 64 bits long before
  // the prefix ends.
  bool capped = false;
  for (int n = 1; n <= k; ++n) {
    if (capped) {
      values.push_back(width);
      continue;
    }
    const std::uint64_t value = element(n);
    if (value >= width) {
      capped = true;
      values.push_back(width);
    } else {
      values.push_back(value);
    }
  }
  return values;
}

std::uint64_t BroadcastSeries::prefix_sum(int k, std::uint64_t width) const {
  std::uint64_t sum = 0;
  for (const std::uint64_t value : prefix(k, width)) {
    sum = util::add_or_die(sum, value);
  }
  return sum;
}

std::uint64_t SkyscraperSeries::element(int n) const {
  VB_EXPECTS(n >= 1);
  const auto idx = static_cast<std::size_t>(n);
  while (memo_.size() <= idx) {
    const int m = static_cast<int>(memo_.size());
    std::uint64_t value = 0;
    if (m == 1) {
      value = 1;
    } else if (m == 2 || m == 3) {
      value = 2;
    } else {
      const std::uint64_t prev = memo_[static_cast<std::size_t>(m - 1)];
      switch (m % 4) {
        case 0:
          value = util::add_or_die(util::mul_or_die(2, prev), 1);
          break;
        case 1:
          value = prev;
          break;
        case 2:
          value = util::add_or_die(util::mul_or_die(2, prev), 2);
          break;
        case 3:
          value = prev;
          break;
        default:
          VB_ASSERT(false);
      }
    }
    memo_.push_back(value);
  }
  return memo_[idx];
}

std::uint64_t FastSeries::element(int n) const {
  VB_EXPECTS(n >= 1);
  VB_EXPECTS_MSG(n <= 63, "fast series overflows past n = 63");
  return std::uint64_t{1} << (n - 1);
}

std::uint64_t FlatSeries::element(int n) const {
  VB_EXPECTS(n >= 1);
  return 1;
}

std::unique_ptr<BroadcastSeries> make_series(const std::string& name) {
  if (name == "skyscraper") {
    return std::make_unique<SkyscraperSeries>();
  }
  if (name == "fast") {
    return std::make_unique<FastSeries>();
  }
  if (name == "flat") {
    return std::make_unique<FlatSeries>();
  }
  VB_EXPECTS_MSG(false, "unknown broadcast series: " + name);
  return nullptr;  // unreachable
}

namespace skyscraper {

bool is_odd_group_element(std::uint64_t value) noexcept {
  return value % 2 == 1;
}

int first_index_reaching(std::uint64_t value) {
  if (value == 0) {
    return 0;
  }
  const SkyscraperSeries series;
  for (int n = 1;; ++n) {
    if (series.element(n) >= value) {
      return n;
    }
  }
}

}  // namespace skyscraper
}  // namespace vodbcast::series
