// Transmission groups (paper Section 3.3).
//
// A transmission group is a maximal run of consecutive segments with the same
// size. In the skyscraper series the runs are [1], [2,2], [5,5], [12,12], ...
// A group is *odd* when its common size is odd, *even* otherwise, and the
// paper's client design assigns odd groups to the Odd Loader and even groups
// to the Even Loader. Correctness rests on groups of the two parities
// strictly interleaving, which group_decomposition() verifies.
#pragma once

#include <cstdint>
#include <vector>

namespace vodbcast::series {

/// Parity of a transmission group, keyed by its common segment size.
enum class GroupParity { kOdd, kEven };

/// One transmission group within a capped series.
struct TransmissionGroup {
  int first_segment = 0;   ///< 1-based index of the group's first segment
  int length = 0;          ///< number of segments in the group
  std::uint64_t size = 0;  ///< common relative segment size (units of D1)
  GroupParity parity = GroupParity::kOdd;

  /// Total units of video carried by the group.
  [[nodiscard]] std::uint64_t total_units() const noexcept {
    return size * static_cast<std::uint64_t>(length);
  }
};

/// Splits capped segment sizes into transmission groups.
/// Precondition: sizes non-empty, first element 1 is *not* required (callers
/// may decompose an arbitrary suffix), all sizes >= 1.
[[nodiscard]] std::vector<TransmissionGroup> group_decomposition(
    const std::vector<std::uint64_t>& sizes);

/// True when consecutive groups alternate parity (after the width cap starts
/// binding, successive W-groups merge into a single run, so alternation is
/// only required among distinct-size groups; the merged tail counts as one).
[[nodiscard]] bool parities_interleave(
    const std::vector<TransmissionGroup>& groups) noexcept;

/// The paper's transition taxonomy (Section 4): each group-to-group handoff
/// is one of three types with a proven worst-case buffer demand.
enum class TransitionType {
  kInitial,       ///< (1) -> (2,2)
  kEvenToOdd,     ///< (A,A) -> (2A+1, 2A+1), A even
  kOddToEven,     ///< (A,A) -> (2A+2, 2A+2), A odd
  kCapped,        ///< transition into or within the width-capped tail
};

/// Classifies the transition from `from` into `to`.
[[nodiscard]] TransitionType classify_transition(const TransmissionGroup& from,
                                                 const TransmissionGroup& to);

/// The worst-case client buffer demand of a transition, in units of D1
/// (multiply by 60*b*D1 for Mbits). Uniformly `to.size - 1`: a just-in-time
/// join prefetches at most one broadcast period minus one unit of the
/// incoming group before its playback begins. Specializes to the paper's
/// Figure 1 (1 unit), Figure 2 (2A for (A,A) -> (2A+1,2A+1)), Figures 3-4
/// (2A / 2A+1 for (A,A) -> (2A+2,2A+2) at even/odd playback starts) and the
/// Section 4 closing claim 60*b*D1*(W-1) for the capped tail.
[[nodiscard]] std::uint64_t worst_case_buffer_units(
    const TransmissionGroup& from, const TransmissionGroup& to);

}  // namespace vodbcast::series
