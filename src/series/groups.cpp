#include "series/groups.hpp"

#include "util/contracts.hpp"

namespace vodbcast::series {

std::vector<TransmissionGroup> group_decomposition(
    const std::vector<std::uint64_t>& sizes) {
  VB_EXPECTS(!sizes.empty());
  std::vector<TransmissionGroup> groups;
  int start = 1;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    VB_EXPECTS_MSG(sizes[i] >= 1, "segment sizes must be positive");
    const bool run_continues = i + 1 < sizes.size() && sizes[i + 1] == sizes[i];
    if (!run_continues) {
      const int end = static_cast<int>(i) + 1;  // inclusive, 1-based
      groups.push_back(TransmissionGroup{
          .first_segment = start,
          .length = end - start + 1,
          .size = sizes[i],
          .parity = sizes[i] % 2 == 1 ? GroupParity::kOdd : GroupParity::kEven,
      });
      start = end + 1;
    }
  }
  return groups;
}

bool parities_interleave(
    const std::vector<TransmissionGroup>& groups) noexcept {
  for (std::size_t i = 1; i < groups.size(); ++i) {
    if (groups[i].parity == groups[i - 1].parity) {
      return false;
    }
  }
  return true;
}

TransitionType classify_transition(const TransmissionGroup& from,
                                   const TransmissionGroup& to) {
  VB_EXPECTS(to.first_segment == from.first_segment + from.length);
  if (from.size == 1 && to.size == 2) {
    return TransitionType::kInitial;
  }
  if (to.size == 2 * from.size + 1 && from.size % 2 == 0) {
    return TransitionType::kEvenToOdd;
  }
  if (to.size == 2 * from.size + 2 && from.size % 2 == 1) {
    return TransitionType::kOddToEven;
  }
  // Anything else only arises when the width cap W truncated the natural
  // growth (to.size == W < 2*from.size + 1) or within the capped tail.
  VB_EXPECTS_MSG(to.size >= from.size, "series must be non-decreasing");
  return TransitionType::kCapped;
}

std::uint64_t worst_case_buffer_units(const TransmissionGroup& from,
                                      const TransmissionGroup& to) {
  // Validate the pair, then apply the uniform bound. The incoming group's
  // broadcasts repeat with period to.size and the just-in-time join lands
  // within one period of each deadline, so at most to.size - 1 units of it
  // are prefetched when its playback begins:
  //   (1) -> (2,2)                 : 1 unit         (Figure 1)
  //   (A,A) -> (2A+1,2A+1), A even : 2A units       (Figure 2)
  //   (A,A) -> (2A+2,2A+2), A odd  : 2A+1 units     (Figures 3-4; the
  //                                  even-playback-start phases of Figure 3
  //                                  reach only 2A, the odd ones of
  //                                  Figure 4 the full 2A+1)
  //   (X,X) -> (W,...,W) capped    : W - 1 units    (Section 4's closing
  //                                  storage claim, 60*b*D1*(W-1))
  (void)classify_transition(from, to);
  return to.size - 1;
}

}  // namespace vodbcast::series
