// Segment layout: a concrete fragmentation of one video.
//
// Binds a broadcast series (relative sizes) to a physical video (length D,
// display rate b), yielding per-segment durations and byte sizes plus the
// derived D1 = D / sum_i min(f(i), W) that every latency/storage formula in
// the paper is expressed in.
#pragma once

#include <cstdint>
#include <vector>

#include "core/units.hpp"
#include "core/video.hpp"
#include "series/broadcast_series.hpp"
#include "series/groups.hpp"

namespace vodbcast::series {

/// A video partitioned into K segments of integral relative sizes.
class SegmentLayout {
 public:
  /// Fragments `video` into k segments of `series` law capped at `width`.
  /// Preconditions: k >= 1; width >= 1 (kUncapped allowed).
  SegmentLayout(const BroadcastSeries& series, int k, std::uint64_t width,
                core::VideoParams video);

  [[nodiscard]] int segment_count() const noexcept {
    return static_cast<int>(units_.size());
  }

  /// Relative size (units of D1) of 1-based segment i.
  [[nodiscard]] std::uint64_t units(int i) const;

  /// All relative sizes in order.
  [[nodiscard]] const std::vector<std::uint64_t>& all_units() const noexcept {
    return units_;
  }

  /// Total video length in units of D1 (= D / D1).
  [[nodiscard]] std::uint64_t total_units() const noexcept {
    return total_units_;
  }

  /// Duration of the first segment; equals the scheme's worst access latency.
  [[nodiscard]] core::Minutes unit_duration() const noexcept {
    return unit_duration_;
  }

  /// Duration of 1-based segment i.
  [[nodiscard]] core::Minutes duration(int i) const;

  /// Data size of 1-based segment i.
  [[nodiscard]] core::Mbits size(int i) const;

  /// Playback start offset of 1-based segment i, in units of D1 from the
  /// start of the video.
  [[nodiscard]] std::uint64_t playback_offset_units(int i) const;

  /// The transmission-group decomposition of this layout.
  [[nodiscard]] const std::vector<TransmissionGroup>& groups() const noexcept {
    return groups_;
  }

  /// Largest relative segment size (the effective skyscraper width).
  [[nodiscard]] std::uint64_t effective_width() const noexcept {
    return units_.empty() ? 0 : units_.back();
  }

  [[nodiscard]] const core::VideoParams& video() const noexcept {
    return video_;
  }

 private:
  std::vector<std::uint64_t> units_;
  std::vector<std::uint64_t> offsets_;  ///< prefix sums; offsets_[i] for seg i+1
  std::uint64_t total_units_ = 0;
  core::Minutes unit_duration_{0.0};
  core::VideoParams video_{};
  std::vector<TransmissionGroup> groups_;
};

}  // namespace vodbcast::series
