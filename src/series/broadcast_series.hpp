// Broadcast series: the fragmentation law of a periodic-broadcast scheme.
//
// A broadcast series assigns every segment index n >= 1 a relative size
// (in units of the first segment). Skyscraper Broadcasting is defined by the
// recurrence (paper Section 3.2)
//
//             | 1                n = 1
//             | 2                n = 2, 3
//     f(n) =  | 2 f(n-1) + 1     n mod 4 == 0
//             | f(n-1)           n mod 4 == 1
//             | 2 f(n-1) + 2     n mod 4 == 2
//             | f(n-1)           n mod 4 == 3
//
// materializing as [1, 2, 2, 5, 5, 12, 12, 25, 25, 52, 52, ...]; applying the
// width cap W yields segment sizes min(f(n), W). The paper frames SB as a
// *family* of schemes parameterized by the series, so the generator is an
// interface with the pyramid (geometric), flat (staggered) and
// fast-broadcast (powers of two) laws implemented alongside.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace vodbcast::series {

/// Width cap value meaning "no cap" (the W = infinity curves in the paper).
inline constexpr std::uint64_t kUncapped =
    static_cast<std::uint64_t>(-1);

/// Integer broadcast series interface. Elements are sizes relative to the
/// first segment; element(1) must be 1 and elements must be non-decreasing.
class BroadcastSeries {
 public:
  virtual ~BroadcastSeries() = default;

  /// Human-readable law name ("skyscraper", "fast", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// f(n) for n >= 1. Throws on overflow of the underlying recurrence.
  [[nodiscard]] virtual std::uint64_t element(int n) const = 0;

  /// First k elements with the width cap applied: min(f(n), width).
  [[nodiscard]] std::vector<std::uint64_t> prefix(
      int k, std::uint64_t width = kUncapped) const;

  /// Sum of the first k capped elements, i.e. the video length measured in
  /// first-segment units: D / D1.
  [[nodiscard]] std::uint64_t prefix_sum(int k,
                                         std::uint64_t width = kUncapped) const;
};

/// The paper's skyscraper series. Thread-compatible; memoizes elements.
class SkyscraperSeries final : public BroadcastSeries {
 public:
  [[nodiscard]] std::string name() const override { return "skyscraper"; }
  [[nodiscard]] std::uint64_t element(int n) const override;

 private:
  mutable std::vector<std::uint64_t> memo_{0};  // memo_[n] = f(n); index 0 unused
};

/// Fast Broadcasting's doubling law [1, 2, 4, 8, ...]; implemented as the
/// "alternative series" extension the paper's conclusion anticipates.
class FastSeries final : public BroadcastSeries {
 public:
  [[nodiscard]] std::string name() const override { return "fast"; }
  [[nodiscard]] std::uint64_t element(int n) const override;
};

/// The flat law [1, 1, 1, ...]: staggered periodic broadcast (every segment
/// equals the batching interval).
class FlatSeries final : public BroadcastSeries {
 public:
  [[nodiscard]] std::string name() const override { return "flat"; }
  [[nodiscard]] std::uint64_t element(int n) const override;
};

/// Creates a series generator by law name; throws on unknown names.
[[nodiscard]] std::unique_ptr<BroadcastSeries> make_series(
    const std::string& name);

/// The skyscraper closed-form helpers. These mirror the recurrence and are
/// cross-checked against it in tests.
namespace skyscraper {

/// True if segment n belongs to an odd transmission group (odd f(n)).
[[nodiscard]] bool is_odd_group_element(std::uint64_t value) noexcept;

/// Index (1-based) of the first n with f(n) >= value, i.e. where a width cap
/// of `value` starts binding. Returns 0 if value == 0.
[[nodiscard]] int first_index_reaching(std::uint64_t value);

}  // namespace skyscraper

}  // namespace vodbcast::series
