#include "series/segmentation.hpp"

#include <numeric>

#include "util/contracts.hpp"
#include "util/math.hpp"

namespace vodbcast::series {

SegmentLayout::SegmentLayout(const BroadcastSeries& series, int k,
                             std::uint64_t width, core::VideoParams video)
    : video_(video) {
  VB_EXPECTS(k >= 1);
  VB_EXPECTS(width >= 1);
  VB_EXPECTS(video.duration.v > 0.0);
  VB_EXPECTS(video.display_rate.v > 0.0);

  units_ = series.prefix(k, width);
  offsets_.resize(units_.size() + 1, 0);
  for (std::size_t i = 0; i < units_.size(); ++i) {
    offsets_[i + 1] = util::add_or_die(offsets_[i], units_[i]);
  }
  total_units_ = offsets_.back();
  unit_duration_ =
      core::Minutes{video.duration.v / static_cast<double>(total_units_)};
  groups_ = group_decomposition(units_);
}

std::uint64_t SegmentLayout::units(int i) const {
  VB_EXPECTS(i >= 1 && i <= segment_count());
  return units_[static_cast<std::size_t>(i - 1)];
}

core::Minutes SegmentLayout::duration(int i) const {
  return static_cast<double>(units(i)) * unit_duration_;
}

core::Mbits SegmentLayout::size(int i) const {
  return video_.display_rate * duration(i);
}

std::uint64_t SegmentLayout::playback_offset_units(int i) const {
  VB_EXPECTS(i >= 1 && i <= segment_count());
  return offsets_[static_cast<std::size_t>(i - 1)];
}

}  // namespace vodbcast::series
