// Slot-stepped SB client session: loaders + player wired together.
//
// This is the operational implementation of the paper's client design,
// advanced one slot (one unit of D1) at a time. It is deliberately
// independent of the analytic planner in reception_plan.hpp — it derives
// download starts from the Loader state machines and stalls from per-unit
// arrival times — so tests can require the two to agree exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "client/loader.hpp"
#include "client/player.hpp"
#include "series/segmentation.hpp"

namespace vodbcast::client {

/// Result of running a session to completion.
struct SessionResult {
  bool jitter_free = false;
  std::uint64_t stall_count = 0;
  std::int64_t max_buffer_units = 0;
  int max_concurrent_downloads = 0;
  /// Buffer level at each slot boundary from slot 0 through playback end.
  std::vector<std::int64_t> buffer_levels;
  /// Arrival slot of each video unit.
  std::vector<std::uint64_t> unit_arrival;
};

class ClientSession {
 public:
  /// A client whose playback starts at slot `t0`.
  ClientSession(const series::SegmentLayout& layout, std::uint64_t t0);

  /// Runs the session until the player finishes; aborts (returning the
  /// partial result) if the player cannot finish within a generous horizon,
  /// which only happens for schedules that are not jitter-free.
  [[nodiscard]] SessionResult run();

 private:
  const series::SegmentLayout& layout_;
  std::uint64_t t0_;
};

}  // namespace vodbcast::client
