#include "client/reception_plan.hpp"

#include <algorithm>
#include <utility>

#include "util/contracts.hpp"
#include "util/math.hpp"

namespace vodbcast::client {

namespace {

/// Smallest multiple of `period` that is >= t.
std::uint64_t next_broadcast_start(std::uint64_t t, std::uint64_t period) {
  VB_ASSERT(period > 0);
  return ((t + period - 1) / period) * period;
}

/// The just-in-time join: the latest broadcast start that still meets the
/// deadline, unless the loader only frees up later (then the next start
/// after it becomes free -- necessarily late, and flagged as such).
///
/// This is the paper's client: Section 4 considers exactly one broadcast
/// period of candidate starts ending at each group's deadline (e.g. "the
/// possible times to start receiving group (2A+1,2A+1) are t, t+1, ...,
/// t+2A" -- one period of 2A+1). An eager loader that joined a full period
/// earlier would hold a whole extra group in the buffer and break the
/// 60*b*D1*(W-1) storage bound.
std::uint64_t jit_broadcast_start(std::uint64_t earliest,
                                  std::uint64_t deadline,
                                  std::uint64_t period) {
  VB_ASSERT(period > 0);
  const std::uint64_t jit = (deadline / period) * period;
  if (jit >= earliest) {
    return jit;
  }
  return next_broadcast_start(earliest, period);
}

int peak_concurrency(const std::vector<SegmentDownload>& downloads) {
  std::vector<std::pair<std::uint64_t, int>> events;
  events.reserve(downloads.size() * 2);
  for (const auto& d : downloads) {
    events.emplace_back(d.start, +1);
    events.emplace_back(d.end(), -1);
  }
  // Ends sort before starts at equal times: back-to-back downloads on one
  // loader do not count as overlapping.
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) {
                return a.first < b.first;
              }
              return a.second < b.second;
            });
  int current = 0;
  int peak = 0;
  for (const auto& [time, delta] : events) {
    current += delta;
    peak = std::max(peak, current);
  }
  VB_ASSERT(current == 0);
  return peak;
}

BufferTrace build_trace(const std::vector<SegmentDownload>& downloads,
                        std::uint64_t t0, std::uint64_t total_units) {
  // Occupancy is piecewise linear: each download contributes fill rate +1
  // over [start, end), playback drains at -1 over [t0, t0 + total_units).
  // One sort plus a single accumulating sweep over the rate deltas visits
  // each breakpoint once; the levels are the same integer sums the old
  // per-breakpoint rescan computed, so the points are bit-identical.
  std::vector<std::pair<std::uint64_t, std::int64_t>> events;
  events.reserve(downloads.size() * 2 + 2);
  for (const auto& d : downloads) {
    events.emplace_back(d.start, std::int64_t{1});
    events.emplace_back(d.end(), std::int64_t{-1});
  }
  events.emplace_back(t0, std::int64_t{-1});
  events.emplace_back(t0 + total_units, std::int64_t{1});
  std::sort(events.begin(), events.end());

  std::vector<BufferPoint> points;
  points.reserve(events.size());
  std::int64_t level = 0;
  std::int64_t rate = 0;
  std::uint64_t prev = events.front().first;
  for (std::size_t i = 0; i < events.size();) {
    const std::uint64_t t = events[i].first;
    level += rate * static_cast<std::int64_t>(t - prev);
    while (i < events.size() && events[i].first == t) {
      rate += events[i].second;
      ++i;
    }
    points.push_back(BufferPoint{.time = t, .level = level});
    prev = t;
  }
  VB_ASSERT(rate == 0);
  return BufferTrace(std::move(points));
}

/// Fills in the derived fields (deadline check, tuner peak, buffer trace)
/// common to every planner.
void finalize_plan(ReceptionPlan& plan, const series::SegmentLayout& layout) {
  plan.jitter_free =
      std::all_of(plan.downloads.begin(), plan.downloads.end(),
                  [](const SegmentDownload& d) { return d.meets_deadline(); });
  plan.max_concurrent_downloads = peak_concurrency(plan.downloads);
  plan.trace =
      build_trace(plan.downloads, plan.playback_start, layout.total_units());
  plan.max_buffer_units = plan.trace.max_level();
}

/// Sweeps a planner over every distinct client phase (bounded by the lcm of
/// the channel periods, capped at max_phases).
template <typename Planner>
WorstCase sweep_phases(const series::SegmentLayout& layout,
                       std::uint64_t max_phases, Planner&& planner) {
  VB_EXPECTS(max_phases >= 1);

  std::uint64_t period = 1;
  bool overflowed = false;
  for (const std::uint64_t s : layout.all_units()) {
    const auto next = util::checked_mul(period / util::gcd_u64(period, s), s);
    if (!next.has_value() || *next > max_phases) {
      overflowed = true;
      break;
    }
    period = *next;
  }
  const std::uint64_t phases = overflowed ? max_phases : period;

  WorstCase result;
  result.phases_examined = phases;
  for (std::uint64_t t0 = 0; t0 < phases; ++t0) {
    const ReceptionPlan plan = planner(layout, t0);
    if (!plan.jitter_free) {
      result.always_jitter_free = false;
    }
    result.max_concurrent_downloads =
        std::max(result.max_concurrent_downloads,
                 plan.max_concurrent_downloads);
    if (plan.max_buffer_units > result.max_buffer_units) {
      result.max_buffer_units = plan.max_buffer_units;
      result.worst_phase = t0;
    }
  }
  return result;
}

}  // namespace

ReceptionPlan plan_reception(const series::SegmentLayout& layout,
                             std::uint64_t t0) {
  ReceptionPlan plan;
  plan.playback_start = t0;

  // Loader availability; both routines exist from client arrival, and the
  // earliest joinable broadcast start is t0 (the next Segment-1 start).
  std::uint64_t free_at[2] = {t0, t0};

  for (const auto& group : layout.groups()) {
    const auto loader =
        group.parity == series::GroupParity::kOdd ? LoaderId::kOdd
                                                  : LoaderId::kEven;
    auto& free = free_at[loader == LoaderId::kOdd ? 0 : 1];
    for (int s = group.first_segment;
         s < group.first_segment + group.length; ++s) {
      const std::uint64_t size = layout.units(s);
      VB_ASSERT(size == group.size);
      const std::uint64_t deadline = t0 + layout.playback_offset_units(s);
      const std::uint64_t start = jit_broadcast_start(free, deadline, size);
      plan.downloads.push_back(SegmentDownload{
          .segment = s,
          .loader = loader,
          .start = start,
          .length = size,
          .deadline = deadline,
      });
      free = start + size;
    }
  }

  finalize_plan(plan, layout);
  return plan;
}

WorstCase worst_case_over_phases(const series::SegmentLayout& layout,
                                 std::uint64_t max_phases) {
  // All channel schedules repeat with period lcm(s_1, ..., s_K); beyond it
  // every playback phase t0 behaves identically to t0 mod lcm.
  return sweep_phases(layout, max_phases, plan_reception);
}

ReceptionPlan plan_parallel_reception(const series::SegmentLayout& layout,
                                      std::uint64_t t0) {
  ReceptionPlan plan;
  plan.playback_start = t0;
  for (int s = 1; s <= layout.segment_count(); ++s) {
    const std::uint64_t size = layout.units(s);
    // A dedicated tuner per channel: join the first broadcast at or after
    // the client's start, eagerly (Fast Broadcasting's reception rule).
    const std::uint64_t start = next_broadcast_start(t0, size);
    plan.downloads.push_back(SegmentDownload{
        .segment = s,
        // Loader ids are meaningless with one tuner per channel; tag by
        // channel parity for display purposes.
        .loader = s % 2 == 1 ? LoaderId::kOdd : LoaderId::kEven,
        .start = start,
        .length = size,
        .deadline = t0 + layout.playback_offset_units(s),
    });
  }
  finalize_plan(plan, layout);
  return plan;
}

WorstCase parallel_worst_case_over_phases(const series::SegmentLayout& layout,
                                          std::uint64_t max_phases) {
  return sweep_phases(layout, max_phases, plan_parallel_reception);
}

}  // namespace vodbcast::client
