// Piecewise-linear client buffer occupancy traces.
//
// Downloads and playback both progress at constant rates, so buffer
// occupancy over time is piecewise linear with breakpoints only where a
// download starts/ends or playback starts/ends. The trace stores exact
// integer levels (in units of D1 worth of data) at those breakpoints; the
// true maximum of a piecewise-linear function is attained at a breakpoint,
// so max() is exact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vodbcast::client {

/// One breakpoint: buffer level (units of D1 data) at an integer time.
/// A negative level means the player outran the loaders (a buffer underrun);
/// jitter-free plans never produce one.
struct BufferPoint {
  std::uint64_t time = 0;   ///< units of D1 since the broadcast epoch
  std::int64_t level = 0;   ///< buffered data, units of D1
};

class BufferTrace {
 public:
  BufferTrace() = default;
  /// Points must be strictly increasing in time.
  explicit BufferTrace(std::vector<BufferPoint> points);

  [[nodiscard]] const std::vector<BufferPoint>& points() const noexcept {
    return points_;
  }
  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }

  /// Peak buffer level over the whole trace; 0 for an empty trace.
  [[nodiscard]] std::int64_t max_level() const noexcept;

  /// Level at an arbitrary time by linear interpolation; clamps outside the
  /// recorded range to the boundary values.
  [[nodiscard]] double level_at(double time) const;

  /// Renders the trace as a small ASCII occupancy chart (used by the
  /// Figure 1-4 benches).
  [[nodiscard]] std::string render(int width = 64, int height = 10) const;

 private:
  std::vector<BufferPoint> points_;
};

}  // namespace vodbcast::client
