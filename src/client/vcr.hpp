// VCR interactivity on top of periodic broadcast — the follow-on question
// the paper's introduction raises (subscribers expect pause/resume even
// though the channels keep looping regardless of any one client).
//
// Two strategies are modelled exactly, in the same integer units as the
// reception planner:
//
//  * keep-downloading: the loaders follow their original schedule through
//    the pause while the player idles; playback resumes instantly but the
//    buffer grows by up to the pause length (analyze_pause quantifies it).
//
//  * release-and-rejoin: the tuners are released at the pause; on resume
//    the client keeps every fully-downloaded segment and re-joins the
//    broadcasts of the rest just in time. Because broadcasts only start on
//    their own grid, resumption may have to wait for a phase where the
//    remaining suffix is two-loader schedulable (plan_rejoin finds the
//    minimal such wait).
#pragma once

#include <cstdint>

#include "client/reception_plan.hpp"
#include "series/segmentation.hpp"

namespace vodbcast::client {

/// Cost of pausing with the keep-downloading strategy.
struct PauseAnalysis {
  std::int64_t peak_buffer_units_unpaused = 0;
  std::int64_t peak_buffer_units_paused = 0;
  BufferTrace paused_trace;
  bool jitter_free = true;  ///< always true: deadlines only get later
};

/// A playback that started at t0 pauses at absolute slot `pause_at` for
/// `pause_slots`; loaders keep following the original plan.
/// Preconditions: t0 <= pause_at < t0 + total units.
[[nodiscard]] PauseAnalysis analyze_pause(const series::SegmentLayout& layout,
                                          std::uint64_t t0,
                                          std::uint64_t pause_at,
                                          std::uint64_t pause_slots);

/// Result of the release-and-rejoin strategy.
struct RejoinAnalysis {
  std::uint64_t requested_resume = 0;  ///< when the viewer pressed play
  std::uint64_t actual_resume = 0;     ///< first slot with a feasible plan
  std::uint64_t extra_wait = 0;        ///< actual - requested
  ReceptionPlan suffix_plan;           ///< downloads for the refetched tail
  int refetched_segments = 0;
};

/// Plans resumption at video position `position_units` (a segment
/// boundary), given the set of segments already held (all with index <
/// `first_missing_segment`), wanting playback back at `requested_resume`.
/// Searches forward for the first resume slot whose just-in-time suffix
/// plan is jitter-free. Preconditions: position_units is the playback
/// offset of `first_missing_segment` or earlier.
[[nodiscard]] RejoinAnalysis plan_rejoin(const series::SegmentLayout& layout,
                                         int first_missing_segment,
                                         std::uint64_t position_units,
                                         std::uint64_t requested_resume);

}  // namespace vodbcast::client
