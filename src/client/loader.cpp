#include "client/loader.hpp"

#include "util/contracts.hpp"

namespace vodbcast::client {

Loader::Loader(std::vector<LoaderTask> tasks, std::uint64_t earliest_tune)
    : tasks_(std::move(tasks)),
      starts_(tasks_.size()),
      free_at_(earliest_tune) {
  for (const auto& t : tasks_) {
    VB_EXPECTS(t.size >= 1);
    VB_EXPECTS(t.segment >= 1);
  }
}

std::optional<int> Loader::step(std::uint64_t slot) {
  if (remaining_ == 0) {
    if (current_ >= tasks_.size()) {
      return std::nullopt;
    }
    const auto& task = tasks_[current_];
    // Join only at a broadcast start (a multiple of the segment size), no
    // earlier than the loader became free, and just in time: only the last
    // start meeting the deadline -- equivalently a start whose broadcast
    // extends past the deadline -- is taken. Earlier aligned slots pass by.
    const bool at_broadcast_start = slot % task.size == 0;
    const bool just_in_time = slot + task.size > task.deadline;
    if (slot < free_at_ || !at_broadcast_start || !just_in_time) {
      return std::nullopt;
    }
    starts_[current_] = slot;
    remaining_ = task.size;
  }
  VB_ASSERT(current_ < tasks_.size());
  const int segment = tasks_[current_].segment;
  --remaining_;
  if (remaining_ == 0) {
    free_at_ = slot + 1;
    ++current_;
  }
  return segment;
}

std::optional<std::uint64_t> Loader::download_start(
    std::size_t task_index) const {
  VB_EXPECTS(task_index < starts_.size());
  return starts_[task_index];
}

}  // namespace vodbcast::client
