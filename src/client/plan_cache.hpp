// Phase-keyed reception-plan cache — the metro-scale hot path.
//
// Every channel of an SB layout loops its segment aligned at multiples of
// the segment's size, so the whole broadcast schedule repeats with period
// P = lcm(s_1, ..., s_K) (the layout's *phase period*). plan_reception is a
// pure function of (layout, t0) whose integer arithmetic commutes with
// shifting t0 by any multiple of P:
//
//     plan_reception(layout, t0)
//       == shift(plan_reception(layout, t0 mod P), t0 - t0 mod P)
//
// where shift() adds the offset to every download start/deadline and the
// playback start, leaving the jitter verdict, tuner peak and buffer peak
// untouched (all are differences of times). A metropolitan simulation that
// recomputed the plan per arrival therefore pays O(arrivals * W log W) for
// results drawn from at most P distinct answers; this cache computes one
// canonical plan per phase and serves every other arrival as a shifted
// *view* of it — no download-vector copy, no trace rebuild.
//
// The phase-shift invariance itself is pinned independently of the cache by
// tests/test_plan_cache.cpp (property test over schemes, widths and
// offsets), so the cache can rely on it rather than re-verify per hit.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "client/reception_plan.hpp"
#include "series/segmentation.hpp"

namespace vodbcast::client {

/// Phase period of a layout: lcm of the per-channel slot periods (= the
/// relative segment sizes). nullopt when the lcm overflows 64 bits or
/// exceeds `max_period` — then the layout has more distinct phases than the
/// caller is willing to enumerate.
[[nodiscard]] std::optional<std::uint64_t> phase_period(
    const series::SegmentLayout& layout, std::uint64_t max_period);

/// A reception plan seen through a phase shift: all times offset by
/// `shift()`, everything else (jitter flag, tuner peak, buffer peak) read
/// straight from the canonical plan. Cheap to copy; does not own the plan.
class PlanView {
 public:
  PlanView() = default;
  PlanView(const ReceptionPlan& base, std::uint64_t shift, bool hit)
      : base_(&base), shift_(shift), hit_(hit) {}

  [[nodiscard]] bool valid() const noexcept { return base_ != nullptr; }
  [[nodiscard]] const ReceptionPlan& base() const noexcept { return *base_; }
  [[nodiscard]] std::uint64_t shift() const noexcept { return shift_; }
  /// True when the view was served from a cached canonical plan.
  [[nodiscard]] bool hit() const noexcept { return hit_; }

  [[nodiscard]] std::uint64_t playback_start() const noexcept {
    return base_->playback_start + shift_;
  }
  [[nodiscard]] bool jitter_free() const noexcept {
    return base_->jitter_free;
  }
  [[nodiscard]] int max_concurrent_downloads() const noexcept {
    return base_->max_concurrent_downloads;
  }
  [[nodiscard]] std::int64_t max_buffer_units() const noexcept {
    return base_->max_buffer_units;
  }
  [[nodiscard]] core::Mbits max_buffer(
      const series::SegmentLayout& layout) const {
    return base_->max_buffer(layout);
  }

  [[nodiscard]] std::size_t download_count() const noexcept {
    return base_->downloads.size();
  }
  /// The i-th download with start and deadline shifted into the view's
  /// absolute time frame (length, segment and loader are shift-invariant).
  [[nodiscard]] SegmentDownload download(std::size_t i) const {
    SegmentDownload d = base_->downloads[i];
    d.start += shift_;
    d.deadline += shift_;
    return d;
  }

  /// Materializes a standalone shifted ReceptionPlan (downloads and buffer
  /// trace rebased). Costs a full copy — for callers that outlive the
  /// cache, not for the per-arrival hot path.
  [[nodiscard]] ReceptionPlan materialize() const;

 private:
  const ReceptionPlan* base_ = nullptr;
  std::uint64_t shift_ = 0;
  bool hit_ = false;
};

/// Caches one canonical ReceptionPlan per arrival phase of a layout.
///
/// Entries are computed lazily on first miss and never evicted (the entry
/// count is bounded by the phase period, which is bounded by
/// `max_entries`). When the layout's phase period exceeds `max_entries`
/// the cache degrades to a pass-through: every at() recomputes into a
/// scratch plan and counts as a miss, so callers need no fallback path.
///
/// View validity: a view served from a cached entry stays valid for the
/// cache's lifetime; a pass-through view only until the next at() call.
/// Not thread-safe — one cache per simulation run (parallel replications
/// each build their own, preserving the bit-identity contract).
class PlanCache {
 public:
  static constexpr std::uint64_t kDefaultMaxEntries = 1u << 16;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t entries = 0;  ///< canonical plans materialized
    std::size_t bytes = 0;    ///< approx retained plan storage
  };

  explicit PlanCache(const series::SegmentLayout& layout,
                     std::uint64_t max_entries = kDefaultMaxEntries);

  /// False when the phase period exceeded the entry budget (pass-through
  /// mode: correctness preserved, no reuse).
  [[nodiscard]] bool enabled() const noexcept { return period_ != 0; }
  /// The layout's phase period P; 0 in pass-through mode.
  [[nodiscard]] std::uint64_t period() const noexcept { return period_; }

  /// True if the canonical plan for t0's phase is already materialized
  /// (at() on this t0 would be a hit). Cheap: one mod + one load.
  [[nodiscard]] bool contains(std::uint64_t t0) const noexcept;

  /// The reception plan for playback start `t0`, as a shifted view of the
  /// phase's canonical plan. Equal to plan_reception(layout, t0) in every
  /// observable field.
  [[nodiscard]] PlanView at(std::uint64_t t0);

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  const series::SegmentLayout& layout_;
  std::uint64_t period_ = 0;  ///< 0 = pass-through
  std::vector<std::unique_ptr<ReceptionPlan>> slots_;
  ReceptionPlan scratch_;  ///< pass-through result storage
  Stats stats_;
};

}  // namespace vodbcast::client
