#include "client/plan_cache.hpp"

#include "util/math.hpp"

namespace vodbcast::client {

std::optional<std::uint64_t> phase_period(const series::SegmentLayout& layout,
                                          std::uint64_t max_period) {
  std::uint64_t period = 1;
  for (const std::uint64_t s : layout.all_units()) {
    const auto next =
        util::checked_mul(period / util::gcd_u64(period, s), s);
    if (!next.has_value() || *next > max_period) {
      return std::nullopt;
    }
    period = *next;
  }
  return period;
}

ReceptionPlan PlanView::materialize() const {
  ReceptionPlan plan = *base_;
  plan.playback_start += shift_;
  for (auto& d : plan.downloads) {
    d.start += shift_;
    d.deadline += shift_;
  }
  auto points = plan.trace.points();
  for (auto& p : points) {
    p.time += shift_;
  }
  plan.trace = BufferTrace(std::move(points));
  return plan;
}

namespace {

/// Heap bytes one cached plan retains beyond its own footprint.
std::size_t plan_bytes(const ReceptionPlan& plan) {
  return sizeof(ReceptionPlan) +
         plan.downloads.capacity() * sizeof(SegmentDownload) +
         plan.trace.points().capacity() * sizeof(BufferPoint);
}

}  // namespace

PlanCache::PlanCache(const series::SegmentLayout& layout,
                     std::uint64_t max_entries)
    : layout_(layout) {
  const auto period = phase_period(layout, max_entries);
  if (period.has_value()) {
    period_ = *period;
    slots_.resize(static_cast<std::size_t>(period_));
  }
}

bool PlanCache::contains(std::uint64_t t0) const noexcept {
  if (period_ == 0) {
    return false;
  }
  return slots_[static_cast<std::size_t>(t0 % period_)] != nullptr;
}

PlanView PlanCache::at(std::uint64_t t0) {
  if (period_ == 0) {
    ++stats_.misses;
    scratch_ = plan_reception(layout_, t0);
    return PlanView(scratch_, 0, false);
  }
  const std::uint64_t phase = t0 % period_;
  auto& slot = slots_[static_cast<std::size_t>(phase)];
  const bool hit = slot != nullptr;
  if (hit) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
    slot = std::make_unique<ReceptionPlan>(plan_reception(layout_, phase));
    ++stats_.entries;
    stats_.bytes += plan_bytes(*slot);
  }
  return PlanView(*slot, t0 - phase, hit);
}

}  // namespace vodbcast::client
