#include "client/player.hpp"

#include "util/contracts.hpp"

namespace vodbcast::client {

namespace {
/// Sentinel for "unit not yet received".
constexpr std::uint64_t kNotArrived = static_cast<std::uint64_t>(-1);
}  // namespace

Player::Player(std::uint64_t t0, std::uint64_t total_units)
    : t0_(t0), total_units_(total_units) {}

void Player::step(std::uint64_t slot,
                  const std::vector<std::uint64_t>& unit_arrival) {
  if (slot < t0_ || finished()) {
    return;
  }
  VB_EXPECTS(unit_arrival.size() == total_units_);
  VB_ASSERT(slot - t0_ >= position_);  // the player never runs ahead of time
  const std::uint64_t due = position_;
  const std::uint64_t arrived = unit_arrival[due];
  if (arrived == kNotArrived || arrived > slot) {
    // The due unit is not receivable during this slot: jitter.
    ++stalls_;
    return;
  }
  ++position_;
}

}  // namespace vodbcast::client
