#include "client/client_session.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace vodbcast::client {

namespace {
constexpr std::uint64_t kNotArrived = static_cast<std::uint64_t>(-1);
}  // namespace

ClientSession::ClientSession(const series::SegmentLayout& layout,
                             std::uint64_t t0)
    : layout_(layout), t0_(t0) {}

SessionResult ClientSession::run() {
  // Split segments between the two loaders by transmission-group parity.
  std::vector<LoaderTask> odd_tasks;
  std::vector<LoaderTask> even_tasks;
  for (const auto& group : layout_.groups()) {
    auto& tasks = group.parity == series::GroupParity::kOdd ? odd_tasks
                                                            : even_tasks;
    for (int s = group.first_segment;
         s < group.first_segment + group.length; ++s) {
      tasks.push_back(LoaderTask{
          .segment = s,
          .size = layout_.units(s),
          .deadline = t0_ + layout_.playback_offset_units(s),
      });
    }
  }
  Loader odd(std::move(odd_tasks), t0_);
  Loader even(std::move(even_tasks), t0_);

  const std::uint64_t total = layout_.total_units();
  SessionResult result;
  result.unit_arrival.assign(total, kNotArrived);
  std::vector<std::uint64_t> segment_progress(
      static_cast<std::size_t>(layout_.segment_count()) + 1, 0);

  Player player(t0_, total);
  std::uint64_t arrived = 0;

  // A jitter-free run finishes at exactly t0 + total; the horizon leaves
  // room for a full extra broadcast cycle of the largest segment so broken
  // schedules terminate too.
  const std::uint64_t horizon =
      t0_ + total + 2 * layout_.effective_width() + 2;

  result.buffer_levels.reserve(horizon + 1);
  result.buffer_levels.push_back(0);

  for (std::uint64_t slot = 0; slot < horizon && !player.finished(); ++slot) {
    int active = 0;
    for (Loader* loader : {&odd, &even}) {
      const auto segment = loader->step(slot);
      if (segment.has_value()) {
        ++active;
        auto& progress =
            segment_progress[static_cast<std::size_t>(*segment)];
        const std::uint64_t unit =
            layout_.playback_offset_units(*segment) + progress;
        VB_ASSERT(unit < total);
        VB_ASSERT(result.unit_arrival[unit] == kNotArrived);
        result.unit_arrival[unit] = slot;
        ++progress;
        ++arrived;
      }
    }
    result.max_concurrent_downloads =
        std::max(result.max_concurrent_downloads, active);

    player.step(slot, result.unit_arrival);

    const std::int64_t level = static_cast<std::int64_t>(arrived) -
                               static_cast<std::int64_t>(player.position());
    result.buffer_levels.push_back(level);
    result.max_buffer_units = std::max(result.max_buffer_units, level);
  }

  result.stall_count = player.stall_count();
  result.jitter_free = player.finished() && !player.stalled();
  return result;
}

}  // namespace vodbcast::client
