// Slot-stepped video player (paper Section 3.3).
//
// The Video Player consumes the shared buffer at the display rate: one unit
// of D1 per slot, starting at t0. A unit is consumable during slot `s` if it
// was (or is being) received during a slot <= s — the "play data as soon as
// they arrive" rule of Figure 1(a). The player records any stall, which a
// correct SB schedule must never produce.
#pragma once

#include <cstdint>
#include <vector>

namespace vodbcast::client {

class Player {
 public:
  /// `total_units` is the video length in units of D1; playback begins at
  /// slot `t0` and consumes exactly one unit per slot.
  Player(std::uint64_t t0, std::uint64_t total_units);

  /// `unit_arrival[u]` must give the slot during which global video unit u
  /// is received. Advances over slot [slot, slot+1); records a stall if the
  /// due unit has not arrived by this slot.
  void step(std::uint64_t slot, const std::vector<std::uint64_t>& unit_arrival);

  [[nodiscard]] bool finished() const noexcept {
    return position_ >= total_units_;
  }
  [[nodiscard]] bool stalled() const noexcept { return stalls_ > 0; }
  [[nodiscard]] std::uint64_t stall_count() const noexcept { return stalls_; }
  [[nodiscard]] std::uint64_t position() const noexcept { return position_; }

 private:
  std::uint64_t t0_;
  std::uint64_t total_units_;
  std::uint64_t position_ = 0;
  std::uint64_t stalls_ = 0;
};

}  // namespace vodbcast::client
