// Exact reception planning for Skyscraper Broadcasting clients
// (paper Sections 3.3 and 4).
//
// SB's correctness argument is number-theoretic: with channel i looping
// segment i (relative size s_i, in units of D1) aligned at multiples of s_i,
// the Odd and Even Loaders can always join broadcasts early enough that the
// Video Player never stalls, using at most two concurrent tuners and at most
// 60*b*D1*(W-1) Mbits of buffer. This module computes, for a client whose
// playback starts at integer time t0, the exact download schedule those
// loaders produce, then verifies jitter-freedom, tuner count and peak buffer
// directly from it. All arithmetic is integral, so the Figure 1-4 scenarios
// are reproduced bit-exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "client/buffer_trace.hpp"
#include "series/segmentation.hpp"

namespace vodbcast::client {

/// Which service routine (paper Section 3.3) fetches a group.
enum class LoaderId { kOdd, kEven };

/// One planned segment download (the loaders download group members
/// back-to-back, so a group of length L yields L consecutive entries on the
/// same loader).
struct SegmentDownload {
  int segment = 0;            ///< 1-based segment index
  LoaderId loader = LoaderId::kOdd;
  std::uint64_t start = 0;    ///< download start (broadcast start joined)
  std::uint64_t length = 0;   ///< segment size = download duration, units
  std::uint64_t deadline = 0; ///< playback start of this segment

  [[nodiscard]] std::uint64_t end() const noexcept { return start + length; }
  /// Jitter-freedom for one segment: download and playback both run at the
  /// display rate, so every byte arrives in time iff the download starts no
  /// later than the segment's playback start.
  [[nodiscard]] bool meets_deadline() const noexcept {
    return start <= deadline;
  }
};

/// The complete plan plus the derived correctness/storage verdicts.
struct ReceptionPlan {
  std::uint64_t playback_start = 0;  ///< t0, units since broadcast epoch
  std::vector<SegmentDownload> downloads;
  bool jitter_free = false;           ///< all deadlines met
  int max_concurrent_downloads = 0;   ///< peak simultaneous tuners
  std::int64_t max_buffer_units = 0;  ///< peak buffer, units of D1 data
  BufferTrace trace;                  ///< exact occupancy breakpoints

  /// Peak buffer converted to Mbits for a given layout.
  [[nodiscard]] core::Mbits max_buffer(const series::SegmentLayout& layout) const {
    return layout.video().display_rate * layout.unit_duration() *
           static_cast<double>(max_buffer_units);
  }
};

/// Plans reception for a client whose playback starts at integer time `t0`
/// (units of D1 since the broadcast epoch; a client arriving at real time a
/// starts playback at t0 = ceil(a), the next Segment-1 broadcast).
///
/// The loader policy is the paper's: odd groups on the Odd Loader, even
/// groups on the Even Loader; each loader fetches its groups in file order,
/// one segment at a time in its entirety, joining the broadcast just in
/// time -- the latest start that still meets the segment's playback
/// deadline (Section 4 analyses exactly one broadcast period of candidate
/// starts ending at each deadline). Joining any earlier would hold a whole
/// extra group in the buffer and void the 60*b*D1*(W-1) storage bound.
[[nodiscard]] ReceptionPlan plan_reception(const series::SegmentLayout& layout,
                                           std::uint64_t t0);

/// Worst case over all distinct arrival phases. The schedule of channel i is
/// periodic with period s_i, so every behaviour repeats with period
/// lcm(s_1..s_K); sweeping t0 over [0, lcm) (capped at `max_phases`, as the
/// lcm is bounded by W * (largest odd size) for capped layouts) covers every
/// reachable scenario.
struct WorstCase {
  std::int64_t max_buffer_units = 0;
  std::uint64_t worst_phase = 0;   ///< a t0 attaining the buffer peak
  bool always_jitter_free = true;
  int max_concurrent_downloads = 0;
  std::uint64_t phases_examined = 0;
};
[[nodiscard]] WorstCase worst_case_over_phases(
    const series::SegmentLayout& layout, std::uint64_t max_phases = 1 << 16);

/// Reception planning for the Fast Broadcasting client (Juhn & Tseng), one
/// of the follow-on protocols this library implements alongside SB: the
/// client owns one tuner PER channel and joins, on channel i, the first
/// broadcast of segment i starting at or after t0. With the doubling series
/// [1, 2, 4, ...] that start is never later than the segment's playback
/// deadline, so playback is jitter-free at the cost of up to K concurrent
/// downloads and roughly half the video buffered.
[[nodiscard]] ReceptionPlan plan_parallel_reception(
    const series::SegmentLayout& layout, std::uint64_t t0);

/// Worst case of the parallel (K-tuner) client over client phases.
[[nodiscard]] WorstCase parallel_worst_case_over_phases(
    const series::SegmentLayout& layout, std::uint64_t max_phases = 1 << 16);

}  // namespace vodbcast::client
