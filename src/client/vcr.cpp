#include "client/vcr.hpp"

#include <algorithm>
#include <set>

#include "util/contracts.hpp"
#include "util/math.hpp"

namespace vodbcast::client {

namespace {

/// Consumption with a pause: rate 1 from t0 until pause_at, idle for
/// pause_slots, then rate 1 until total units are played.
std::int64_t consumed_with_pause(std::uint64_t t, std::uint64_t t0,
                                 std::uint64_t pause_at,
                                 std::uint64_t pause_slots,
                                 std::uint64_t total) {
  if (t <= t0) {
    return 0;
  }
  std::uint64_t played = 0;
  // Before the pause.
  played += std::min(t, pause_at) - std::min(t0, std::min(t, pause_at));
  // After the pause.
  const std::uint64_t resume = pause_at + pause_slots;
  if (t > resume) {
    played += t - resume;
  }
  return static_cast<std::int64_t>(std::min(played, total));
}

}  // namespace

PauseAnalysis analyze_pause(const series::SegmentLayout& layout,
                            std::uint64_t t0, std::uint64_t pause_at,
                            std::uint64_t pause_slots) {
  VB_EXPECTS(pause_at >= t0);
  VB_EXPECTS(pause_at < t0 + layout.total_units());

  const ReceptionPlan base = plan_reception(layout, t0);
  VB_EXPECTS_MSG(base.jitter_free,
                 "pause analysis requires a schedulable layout");

  PauseAnalysis analysis;
  analysis.peak_buffer_units_unpaused = base.max_buffer_units;

  // Rebuild the occupancy trace against the paused consumption curve; the
  // downloads are unchanged (the loaders keep their schedule).
  const std::uint64_t total = layout.total_units();
  std::set<std::uint64_t> breakpoints{t0, pause_at, pause_at + pause_slots,
                                      t0 + total + pause_slots};
  for (const auto& d : base.downloads) {
    breakpoints.insert(d.start);
    breakpoints.insert(d.end());
  }
  std::vector<BufferPoint> points;
  points.reserve(breakpoints.size());
  for (const std::uint64_t t : breakpoints) {
    std::int64_t downloaded = 0;
    for (const auto& d : base.downloads) {
      const std::uint64_t progress =
          t <= d.start ? 0 : std::min(t - d.start, d.length);
      downloaded += static_cast<std::int64_t>(progress);
    }
    points.push_back(BufferPoint{
        .time = t,
        .level = downloaded -
                 consumed_with_pause(t, t0, pause_at, pause_slots, total),
    });
  }
  analysis.paused_trace = BufferTrace(std::move(points));
  analysis.peak_buffer_units_paused = analysis.paused_trace.max_level();
  // Pausing only postpones deadlines, so a jitter-free plan stays so.
  analysis.jitter_free = true;
  return analysis;
}

RejoinAnalysis plan_rejoin(const series::SegmentLayout& layout,
                           int first_missing_segment,
                           std::uint64_t position_units,
                           std::uint64_t requested_resume) {
  VB_EXPECTS(first_missing_segment >= 1 &&
             first_missing_segment <= layout.segment_count());
  VB_EXPECTS(position_units <=
             layout.playback_offset_units(first_missing_segment));

  RejoinAnalysis analysis;
  analysis.requested_resume = requested_resume;
  analysis.refetched_segments =
      layout.segment_count() - first_missing_segment + 1;

  // Try successive resume slots until the just-in-time suffix plan meets
  // every deadline. The schedule repeats with the lcm of the segment
  // periods — a fully aligned resume is always feasible — so searching one
  // hyper-period (overflow-capped) is exhaustive.
  std::uint64_t cap = 1;
  for (const std::uint64_t s : layout.all_units()) {
    const auto next = util::checked_mul(cap / util::gcd_u64(cap, s), s);
    if (!next.has_value() || *next > (std::uint64_t{1} << 20)) {
      cap = std::uint64_t{1} << 20;
      break;
    }
    cap = *next;
  }
  for (std::uint64_t wait = 0; wait <= cap; ++wait) {
    const std::uint64_t resume = requested_resume + wait;
    ReceptionPlan plan;
    plan.playback_start = resume;
    std::uint64_t free_at[2] = {resume, resume};
    for (const auto& group : layout.groups()) {
      const auto loader = group.parity == series::GroupParity::kOdd
                              ? LoaderId::kOdd
                              : LoaderId::kEven;
      auto& free = free_at[loader == LoaderId::kOdd ? 0 : 1];
      for (int s = group.first_segment;
           s < group.first_segment + group.length; ++s) {
        if (s < first_missing_segment) {
          continue;  // already buffered from before the pause
        }
        const std::uint64_t size = layout.units(s);
        const std::uint64_t deadline =
            resume + (layout.playback_offset_units(s) - position_units);
        const std::uint64_t jit = (deadline / size) * size;
        const std::uint64_t start =
            jit >= free ? jit : ((free + size - 1) / size) * size;
        plan.downloads.push_back(SegmentDownload{
            .segment = s,
            .loader = loader,
            .start = start,
            .length = size,
            .deadline = deadline,
        });
        free = start + size;
      }
    }
    const bool feasible = std::all_of(
        plan.downloads.begin(), plan.downloads.end(),
        [](const SegmentDownload& d) { return d.meets_deadline(); });
    if (feasible) {
      plan.jitter_free = true;
      analysis.actual_resume = resume;
      analysis.extra_wait = wait;
      analysis.suffix_plan = std::move(plan);
      return analysis;
    }
  }
  VB_EXPECTS_MSG(false, "no feasible rejoin phase found within the cap");
  return analysis;  // unreachable
}

}  // namespace vodbcast::client
