// Slot-stepped loader state machine (paper Section 3.3).
//
// This is the operational counterpart of the analytic planner in
// reception_plan.hpp: a Loader owns one tuner, is handed the ordered list of
// segments of its parity, and at every integer slot decides whether to join
// a broadcast -- only ever at a broadcast start (multiples of the segment's
// size), and just in time: the last start that still meets the segment's
// playback deadline, or failing that the first start after the loader frees
// up. It accumulates one unit per slot while downloading. Tests step this
// machine slot-by-slot and require bit-identical schedules to the planner,
// so the two implementations check each other.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace vodbcast::client {

/// A segment handed to a loader: index, size (= broadcast period) and the
/// slot its playback starts (the download deadline).
struct LoaderTask {
  int segment = 0;
  std::uint64_t size = 0;
  std::uint64_t deadline = 0;
};

class Loader {
 public:
  /// `tasks` are this loader's segments in file order; `earliest_tune` is
  /// the client's playback start t0 (no broadcast before it is joinable).
  Loader(std::vector<LoaderTask> tasks, std::uint64_t earliest_tune);

  /// Advances over slot [slot, slot+1). Returns the segment index a unit was
  /// downloaded for, or nullopt if the tuner was idle this slot.
  std::optional<int> step(std::uint64_t slot);

  /// True once every task has been fully downloaded.
  [[nodiscard]] bool done() const noexcept {
    return current_ >= tasks_.size() && remaining_ == 0;
  }

  /// Download start recorded for 1-based position `task_index` in this
  /// loader's task list; nullopt if that download has not started yet.
  [[nodiscard]] std::optional<std::uint64_t> download_start(
      std::size_t task_index) const;

  /// True if the tuner is receiving during the current slot.
  [[nodiscard]] bool busy() const noexcept { return remaining_ > 0; }

 private:
  std::vector<LoaderTask> tasks_;
  std::vector<std::optional<std::uint64_t>> starts_;
  std::size_t current_ = 0;        ///< index of the task being fetched next
  std::uint64_t remaining_ = 0;    ///< units left of the in-flight download
  std::uint64_t free_at_;          ///< earliest joinable slot
};

}  // namespace vodbcast::client
