#include "client/buffer_trace.hpp"

#include <algorithm>

#include "util/ascii_plot.hpp"
#include "util/contracts.hpp"

namespace vodbcast::client {

BufferTrace::BufferTrace(std::vector<BufferPoint> points)
    : points_(std::move(points)) {
  for (std::size_t i = 1; i < points_.size(); ++i) {
    VB_EXPECTS_MSG(points_[i].time > points_[i - 1].time,
                   "trace breakpoints must be strictly increasing");
  }
}

std::int64_t BufferTrace::max_level() const noexcept {
  std::int64_t peak = 0;
  for (const auto& p : points_) {
    peak = std::max(peak, p.level);
  }
  return peak;
}

double BufferTrace::level_at(double time) const {
  VB_EXPECTS(!points_.empty());
  if (time <= static_cast<double>(points_.front().time)) {
    return static_cast<double>(points_.front().level);
  }
  if (time >= static_cast<double>(points_.back().time)) {
    return static_cast<double>(points_.back().level);
  }
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), time,
      [](const BufferPoint& p, double t) {
        return static_cast<double>(p.time) < t;
      });
  const auto& hi = *it;
  const auto& lo = *(it - 1);
  const double span = static_cast<double>(hi.time - lo.time);
  const double f = (time - static_cast<double>(lo.time)) / span;
  return static_cast<double>(lo.level) +
         f * static_cast<double>(hi.level - lo.level);
}

std::string BufferTrace::render(int width, int height) const {
  if (points_.empty()) {
    return "(empty trace)\n";
  }
  util::Series series;
  series.label = "buffer (units of D1)";
  for (const auto& p : points_) {
    series.x.push_back(static_cast<double>(p.time));
    series.y.push_back(static_cast<double>(p.level));
  }
  util::PlotOptions options;
  options.width = width;
  options.height = height;
  options.x_label = "time (units of D1)";
  options.y_label = "buffered data (units of D1)";
  options.y_min = 0.0;
  return util::render_plot({series}, options);
}

}  // namespace vodbcast::client
