#include "disk/disk_model.hpp"

#include "util/contracts.hpp"

namespace vodbcast::disk {

DiskSpec DiskSpec::consumer_1997() {
  return DiskSpec{"consumer-1997", 9.0, 5.6, core::MbitPerSec{64.0}};
}

DiskSpec DiskSpec::premium_1997() {
  return DiskSpec{"premium-1997", 7.0, 4.2, core::MbitPerSec{128.0}};
}

DiskSpec DiskSpec::modern() {
  return DiskSpec{"modern", 0.1, 0.0, core::MbitPerSec{4000.0}};
}

core::MbitPerSec total_rate(const std::vector<DiskStream>& set) {
  double total = 0.0;
  for (const auto& s : set) {
    total += s.rate.v;
  }
  return core::MbitPerSec{total};
}

bool round_feasible(const DiskSpec& spec, const std::vector<DiskStream>& set,
                    double round_seconds) {
  VB_EXPECTS(round_seconds > 0.0);
  VB_EXPECTS(spec.media_rate.v > 0.0);
  double busy = 0.0;
  for (const auto& s : set) {
    VB_EXPECTS(s.rate.v > 0.0);
    busy += spec.overhead_seconds() +
            s.rate.v * round_seconds / spec.media_rate.v;
  }
  return busy <= round_seconds;
}

std::optional<double> min_round_seconds(const DiskSpec& spec,
                                        const std::vector<DiskStream>& set) {
  VB_EXPECTS(spec.media_rate.v > 0.0);
  if (set.empty()) {
    return 0.0;
  }
  const double utilization = total_rate(set).v / spec.media_rate.v;
  if (utilization >= 1.0) {
    return std::nullopt;
  }
  // busy(T) = N * overhead + utilization * T <= T
  //   =>  T >= N * overhead / (1 - utilization)
  const double n = static_cast<double>(set.size());
  return n * spec.overhead_seconds() / (1.0 - utilization);
}

core::Mbits double_buffer_memory(const std::vector<DiskStream>& set,
                                 double round_seconds) {
  VB_EXPECTS(round_seconds >= 0.0);
  double mbits = 0.0;
  for (const auto& s : set) {
    mbits += 2.0 * s.rate.v * round_seconds;
  }
  return core::Mbits{mbits};
}

double media_utilization(const DiskSpec& spec,
                         const std::vector<DiskStream>& set) {
  VB_EXPECTS(spec.media_rate.v > 0.0);
  return total_rate(set).v / spec.media_rate.v;
}

std::vector<DiskStream> client_stream_set(core::MbitPerSec display_rate,
                                          int concurrent_writes,
                                          core::MbitPerSec write_rate) {
  VB_EXPECTS(display_rate.v > 0.0);
  VB_EXPECTS(concurrent_writes >= 0);
  std::vector<DiskStream> set{DiskStream{display_rate}};
  for (int i = 0; i < concurrent_writes; ++i) {
    VB_EXPECTS(write_rate.v > 0.0);
    set.push_back(DiskStream{write_rate});
  }
  return set;
}

}  // namespace vodbcast::disk
