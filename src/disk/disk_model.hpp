// Client disk admission model.
//
// The paper's Figure 6 axis — client disk bandwidth — decides whether a
// set-top box can host a scheme at all: PB asks a 1997 drive to absorb two
// channel-rate writes (~50x the display rate) next to the playback read,
// while SB needs at most two display-rate writes. This module models the
// classic round-based (grouped-sweeping) disk scheduler those boxes used:
// in each service round of length T the arm makes one sweep, paying a seek
// plus rotational settle per stream and transferring r_i * T bits for each.
// The round is feasible iff
//
//   sum_i (overhead + r_i * T / media_rate) <= T
//
// and double buffering makes the per-stream memory cost 2 * r_i * T.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/units.hpp"

namespace vodbcast::disk {

/// Mechanical characteristics of a drive.
struct DiskSpec {
  std::string name;
  double avg_seek_ms = 9.0;        ///< average arm move
  double rotational_ms = 4.2;      ///< half-rotation settle (7200 rpm)
  core::MbitPerSec media_rate{64.0};  ///< sustained transfer off the platter

  /// Per-stream positioning overhead in seconds.
  [[nodiscard]] double overhead_seconds() const noexcept {
    return (avg_seek_ms + rotational_ms) / 1000.0;
  }

  /// A commodity consumer drive of the paper's era (~1997): 9 ms seeks,
  /// 5400 rpm, 8 MB/s off the media.
  [[nodiscard]] static DiskSpec consumer_1997();
  /// A premium SCSI drive of the era: 7 ms seeks, 7200 rpm, 16 MB/s.
  [[nodiscard]] static DiskSpec premium_1997();
  /// A modern reference point far above any scheme's needs.
  [[nodiscard]] static DiskSpec modern();
};

/// One continuous stream the disk must sustain (a playback read or an
/// incoming broadcast write); direction does not matter to the sweep.
struct DiskStream {
  core::MbitPerSec rate{0.0};
};

/// Aggregate transfer demand of a stream set.
[[nodiscard]] core::MbitPerSec total_rate(const std::vector<DiskStream>& set);

/// True if one sweep of length `round_seconds` can serve the set.
/// Preconditions: round_seconds > 0, all rates > 0.
[[nodiscard]] bool round_feasible(const DiskSpec& spec,
                                  const std::vector<DiskStream>& set,
                                  double round_seconds);

/// Smallest feasible round length, or nullopt when the set's aggregate rate
/// reaches the media rate (no round length helps). Empty sets are trivially
/// feasible with a zero round.
[[nodiscard]] std::optional<double> min_round_seconds(
    const DiskSpec& spec, const std::vector<DiskStream>& set);

/// Double-buffering memory implied by a round length.
[[nodiscard]] core::Mbits double_buffer_memory(
    const std::vector<DiskStream>& set, double round_seconds);

/// Fraction of the media rate the set consumes (1.0 = saturated).
[[nodiscard]] double media_utilization(const DiskSpec& spec,
                                       const std::vector<DiskStream>& set);

/// The client stream set a broadcasting scheme induces: one playback read
/// at the display rate plus `concurrent_writes` incoming streams at
/// `write_rate` each. (SB: <= 2 writes at b; PB: 2 at B/K; PPB: 1 at the
/// subchannel rate; FB: K at b.)
[[nodiscard]] std::vector<DiskStream> client_stream_set(
    core::MbitPerSec display_rate, int concurrent_writes,
    core::MbitPerSec write_rate);

}  // namespace vodbcast::disk
