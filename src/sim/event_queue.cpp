#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "util/contracts.hpp"

namespace vodbcast::sim {

void EventQueue::schedule(SimTime at, Callback fn) {
  VB_EXPECTS_MSG(at >= now_, "cannot schedule into the past");
  VB_EXPECTS(fn != nullptr);
  heap_.push(Entry{at, next_seq_++, std::move(fn)});
}

bool EventQueue::step() {
  if (heap_.empty()) {
    return false;
  }
  // priority_queue::top is const; move via const_cast is UB-adjacent, so
  // copy the callback out before popping.
  Entry entry = heap_.top();
  heap_.pop();
  now_ = entry.at;
  entry.fn();
  return true;
}

void EventQueue::run_until(SimTime until) {
  while (!heap_.empty() && heap_.top().at <= until) {
    step();
  }
  now_ = std::max(now_, until);
}

}  // namespace vodbcast::sim
