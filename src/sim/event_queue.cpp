#include "sim/event_queue.hpp"

#include <algorithm>
#include <cstring>

#include "obs/sink.hpp"
#include "obs/timer.hpp"

namespace vodbcast::sim {

EventQueue::~EventQueue() {
  // Tear down the callables still pending; every heap entry owns one live
  // slot (free-list slots have a null ops and hold nothing).
  for (const auto& entry : heap_) {
    Slot& slot = pool_[entry.slot];
    slot.ops->destroy(slot.storage);
    slot.ops = nullptr;
  }
}

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNilSlot) {
    const std::uint32_t handle = free_head_;
    Slot& slot = pool_[handle];
    VB_ASSERT(slot.ops == nullptr);  // free-list slots must be dead
    free_head_ = slot.next_free;
    return handle;
  }
  VB_EXPECTS_MSG(pool_.size() < kNilSlot, "event slab exhausted");
  pool_.emplace_back();
  if (sink_ != nullptr) {
    slab_slots_->max_of(static_cast<double>(pool_.size()));
  }
  return static_cast<std::uint32_t>(pool_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t handle) noexcept {
  Slot& slot = pool_[handle];
  slot.ops = nullptr;
#ifndef NDEBUG
  // Poison freed capture bytes so use-after-free reads a recognizable
  // pattern instead of a stale callable.
  std::memset(slot.storage, 0xDD, sizeof(slot.storage));
#endif
  slot.next_free = free_head_;
  free_head_ = handle;
}

void EventQueue::push_entry(SimTime at, std::uint32_t handle) {
  heap_.push_back(Entry{at, next_seq_++, handle});
  std::size_t i = heap_.size() - 1;
  const Entry inserted = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(inserted, heap_[parent])) {
      break;
    }
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = inserted;
}

EventQueue::Entry EventQueue::pop_entry() noexcept {
  const Entry top = heap_.front();
  const Entry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n > 0) {
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) {
        break;
      }
      std::size_t best = first;
      const std::size_t end = std::min(first + 4, n);
      for (std::size_t child = first + 1; child < end; ++child) {
        if (before(heap_[child], heap_[best])) {
          best = child;
        }
      }
      if (!before(heap_[best], last)) {
        break;
      }
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return top;
}

bool EventQueue::step() {
  if (heap_.empty()) {
    return false;
  }
  const Entry entry = pop_entry();
  Slot& slot = pool_[entry.slot];
  VB_ASSERT(slot.ops != nullptr);  // heap entries reference live slots
  // Move the callable onto the stack and recycle its slot *before*
  // invoking: the callback may schedule, which may grow or reuse the pool.
  DetachedCallback cb;
  cb.ops = slot.ops;
  cb.ops->relocate(cb.storage, slot.storage);
  release_slot(entry.slot);
  now_ = entry.at;
  if (sink_ != nullptr) {
    fired_->add();
    const obs::ScopedTimer timer(callback_ns_);
    cb.ops->invoke(cb.storage);
  } else {
    cb.ops->invoke(cb.storage);
  }
  return true;
}

void EventQueue::run_until(SimTime until) {
  while (!heap_.empty() && heap_.front().at <= until) {
    step();
  }
  now_ = std::max(now_, until);
}

void EventQueue::note_scheduled(bool spilled) {
  scheduled_->add();
  pending_peak_->max_of(static_cast<double>(heap_.size()));
  if (spilled) {
    capture_spill_->add();
  }
}

void EventQueue::attach_sink(obs::Sink* sink) {
  sink_ = sink;
  if (sink == nullptr) {
    scheduled_ = nullptr;
    fired_ = nullptr;
    capture_spill_ = nullptr;
    pending_peak_ = nullptr;
    slab_slots_ = nullptr;
    callback_ns_ = nullptr;
    return;
  }
  scheduled_ = &sink->metrics.counter("sim.event_queue.scheduled");
  fired_ = &sink->metrics.counter("sim.event_queue.fired");
  capture_spill_ = &sink->metrics.counter("sim.event_queue.capture_spill");
  pending_peak_ = &sink->metrics.gauge("sim.event_queue.pending_peak");
  slab_slots_ = &sink->metrics.gauge("sim.event_queue.slab_slots");
  callback_ns_ = &sink->metrics.histogram("sim.event_queue.callback_ns",
                                          obs::default_time_bounds_ns());
  slab_slots_->max_of(static_cast<double>(pool_.size()));
}

}  // namespace vodbcast::sim
