#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "obs/sink.hpp"
#include "obs/timer.hpp"
#include "util/contracts.hpp"

namespace vodbcast::sim {

void EventQueue::schedule(SimTime at, Callback fn) {
  VB_EXPECTS_MSG(at >= now_, "cannot schedule into the past");
  VB_EXPECTS(fn != nullptr);
  heap_.push(Entry{at, next_seq_++, std::move(fn)});
  if (sink_ != nullptr) {
    scheduled_->add();
    pending_peak_->max_of(static_cast<double>(heap_.size()));
  }
}

bool EventQueue::step() {
  if (heap_.empty()) {
    return false;
  }
  // priority_queue::top is const; move via const_cast is UB-adjacent, so
  // copy the callback out before popping.
  Entry entry = heap_.top();
  heap_.pop();
  now_ = entry.at;
  if (sink_ != nullptr) {
    fired_->add();
    const obs::ScopedTimer timer(callback_ns_);
    entry.fn();
  } else {
    entry.fn();
  }
  return true;
}

void EventQueue::run_until(SimTime until) {
  while (!heap_.empty() && heap_.top().at <= until) {
    step();
  }
  now_ = std::max(now_, until);
}

void EventQueue::attach_sink(obs::Sink* sink) {
  sink_ = sink;
  if (sink == nullptr) {
    scheduled_ = nullptr;
    fired_ = nullptr;
    pending_peak_ = nullptr;
    callback_ns_ = nullptr;
    return;
  }
  scheduled_ = &sink->metrics.counter("sim.event_queue.scheduled");
  fired_ = &sink->metrics.counter("sim.event_queue.fired");
  pending_peak_ = &sink->metrics.gauge("sim.event_queue.pending_peak");
  callback_ns_ = &sink->metrics.histogram("sim.event_queue.callback_ns",
                                          obs::default_time_bounds_ns());
}

}  // namespace vodbcast::sim
