// Sample statistics for simulation outputs (latency distributions, buffer
// peaks, queue lengths).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/quantile_sketch.hpp"

namespace vodbcast::sim {

/// Equal-width histogram over [lo, hi] (see Distribution::histogram).
struct HistogramBins {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<std::uint64_t> counts;  ///< one entry per bin
};

/// Accumulates scalar samples; quantiles are computed on demand.
///
/// Two accounting modes:
///   * exact (the default, cap 0): every sample is retained and quantiles
///     interpolate over the sorted samples — bit-for-bit the historical
///     behavior;
///   * streaming (set_sample_cap(n)): samples are retained exactly up to
///     the cap; crossing it folds everything into an obs::QuantileSketch
///     and frees the sample storage, so memory stays O(sketch buckets) no
///     matter how many samples arrive. Count, sum, mean, min and max stay
///     exact in both modes; folded quantiles carry the sketch's relative
///     accuracy and stddev switches to the streaming (Welford) moments.
///
/// Merging two distributions in a fixed order yields identical state at
/// any thread count, in either mode (sketch buckets are order-free and the
/// scalar moments combine in merge order).
class Distribution {
 public:
  Distribution() = default;
  Distribution(const Distribution& other);
  Distribution& operator=(const Distribution& other);
  Distribution(Distribution&&) noexcept = default;
  Distribution& operator=(Distribution&&) noexcept = default;

  void add(double sample);

  /// Folds `other`'s samples into this distribution (shard merging: each
  /// worker accumulates locally, then the results are combined). If either
  /// side has folded — or the combined retained count would cross this
  /// side's cap — the result is folded.
  void merge(const Distribution& other);

  /// Streaming mode: retain at most `cap` samples exactly, then fold into
  /// a bounded quantile sketch. 0 (the default) retains everything. If
  /// more than `cap` samples are already retained, they fold immediately.
  void set_sample_cap(std::size_t cap);
  [[nodiscard]] std::size_t sample_cap() const noexcept { return cap_; }
  /// True once samples have been folded into the sketch (quantiles are now
  /// sketch-backed estimates; count/sum/mean/min/max remain exact).
  [[nodiscard]] bool folded() const noexcept { return sketch_ != nullptr; }
  /// Samples represented only by the sketch; 0 while exact.
  [[nodiscard]] std::uint64_t samples_folded() const noexcept;

  [[nodiscard]] std::size_t count() const noexcept {
    return static_cast<std::size_t>(count_);
  }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  /// Retained samples in insertion order (replication merges append in rep
  /// order, so two runs match exactly iff these vectors match). Empty once
  /// folded.
  [[nodiscard]] const std::vector<double>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Interpolated quantile (util::interpolated_quantile over the sorted
  /// samples) — the same definition the obs exports and bench timing stats
  /// report, so one dataset never prints two different percentiles. Once
  /// folded, the sketch's estimate (within its relative accuracy).
  /// q in [0, 1]. Precondition: non-empty.
  [[nodiscard]] double quantile(double q) const;
  /// Population standard deviation. Exact mode: two-pass mean-centered sum
  /// (no sum-of-squares identity: that cancels catastrophically when the
  /// mean dwarfs the spread). Folded mode: streaming Welford moments.
  /// 0 for fewer than two samples.
  [[nodiscard]] double stddev() const;

  /// Heap bytes retained by this distribution right now (sample storage
  /// plus sketch buckets). Quantile calls sort into a scratch copy that is
  /// freed before returning, so this is also the post-query high water.
  [[nodiscard]] std::size_t retained_bytes() const noexcept;

  /// Equal-width bins spanning [min(), max()]; the top edge is inclusive so
  /// every sample lands in a bin. Preconditions: non-empty, bins >= 1,
  /// not folded (bins need the raw samples).
  [[nodiscard]] HistogramBins histogram(std::size_t bins) const;

  /// "n=100 mean=1.23 p50=1.10 p99=4.56 max=5.00"; a folded distribution
  /// appends " folded=N" so sketch-backed quantiles are recognizable.
  [[nodiscard]] std::string summary() const;

 private:
  /// Moves every retained sample into the sketch and frees the storage.
  void fold_now();
  [[nodiscard]] std::vector<double> sorted_copy() const;

  std::vector<double> samples_;
  std::size_t cap_ = 0;  ///< 0 = retain everything
  std::unique_ptr<obs::QuantileSketch> sketch_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  // Streaming (Welford) moments, maintained alongside the exact samples so
  // stddev stays available after a fold.
  double welford_mean_ = 0.0;
  double welford_m2_ = 0.0;
};

}  // namespace vodbcast::sim
