// Sample statistics for simulation outputs (latency distributions, buffer
// peaks, queue lengths).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vodbcast::sim {

/// Equal-width histogram over [lo, hi] (see Distribution::histogram).
struct HistogramBins {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<std::uint64_t> counts;  ///< one entry per bin
};

/// Accumulates scalar samples; quantiles are computed on demand.
class Distribution {
 public:
  void add(double sample);

  /// Folds `other`'s samples into this distribution (shard merging: each
  /// worker accumulates locally, then the results are combined).
  void merge(const Distribution& other);

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  /// Samples in insertion order (replication merges append in rep order, so
  /// two runs match exactly iff these vectors match).
  [[nodiscard]] const std::vector<double>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Interpolated quantile (util::interpolated_quantile over the sorted
  /// samples) — the same definition the obs exports and bench timing stats
  /// report, so one dataset never prints two different percentiles.
  /// q in [0, 1]. Precondition: non-empty.
  [[nodiscard]] double quantile(double q) const;
  /// Population standard deviation, computed two-pass over the samples
  /// (no sum-of-squares identity: that cancels catastrophically when the
  /// mean dwarfs the spread). 0 for fewer than two samples.
  [[nodiscard]] double stddev() const;

  /// Equal-width bins spanning [min(), max()]; the top edge is inclusive so
  /// every sample lands in a bin. Preconditions: non-empty, bins >= 1.
  [[nodiscard]] HistogramBins histogram(std::size_t bins) const;

  /// "n=100 mean=1.23 p50=1.10 p99=4.56 max=5.00"
  [[nodiscard]] std::string summary() const;

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0.0;
};

}  // namespace vodbcast::sim
