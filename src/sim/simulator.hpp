// End-to-end simulation of a metropolitan VoD service under a scheme.
//
// Clients arrive by a Poisson process, pick videos by popularity, tune to
// the next Segment-1 broadcast and (for SB) run the exact reception plan.
// The report carries the empirical latency distribution — which must match
// the closed-form worst case — plus client buffer peaks and tuner counts.
#pragma once

#include <memory>
#include <string>

#include "obs/sampler.hpp"
#include "obs/sink.hpp"
#include "schemes/scheme.hpp"
#include "sim/broadcast_server.hpp"
#include "sim/stats.hpp"
#include "util/rng.hpp"
#include "util/task_pool.hpp"
#include "workload/request.hpp"

namespace vodbcast::fault {
class Injector;
}  // namespace vodbcast::fault

namespace vodbcast::sim {

struct SimulationConfig {
  core::Minutes horizon{600.0};       ///< observation window
  double arrivals_per_minute = 10.0;  ///< aggregate Poisson rate
  std::uint64_t seed = 42;
  /// Run the exact SB reception plan per client (slower; SB schemes only).
  bool plan_clients = false;
  /// Serve reception plans through the phase-keyed client::PlanCache: SB
  /// schedules repeat with period P = lcm(slot periods), so every arrival
  /// phase shares one canonical plan served as a shifted view. Output is
  /// bit-identical either way (the invariance is pinned by
  /// tests/test_plan_cache.cpp); off recomputes per arrival — the A/B lever
  /// for bench/ext_metro_scale.
  bool plan_cache = true;
  /// Sample cap for the report's Distributions (latency, buffer peaks,
  /// fault penalties): 0 (the default) retains every sample exactly;
  /// a positive cap folds into a bounded quantile sketch past the cap so
  /// report memory stays O(1) in clients. See Distribution::set_sample_cap.
  std::size_t stats_sample_cap = 0;
  /// Optional observability attachment (not owned). When set, the run
  /// records "sim.*" / "client.*" metrics and traces client arrival,
  /// tune-in, download, jitter and channel-slot events. Null (the default)
  /// costs one pointer test per instrumented site.
  obs::Sink* sink = nullptr;
  /// Optional time-series sampler (not owned). When set, the run registers
  /// "sim.clients_served", "sim.jitter_events" and
  /// "client.last_buffer_peak_units" probes and advances the sampler along
  /// the arrival clock. Null costs one pointer test per arrival.
  obs::Sampler* sampler = nullptr;
  /// Optional fault injector (not owned; queries are const, so one
  /// instance is safely shared across replications). When set, each
  /// planned client's downloads are assessed against the fault plan and
  /// the recovery policy is played forward: damage is repaired by catch-up
  /// repetitions within the retry budget (with the wait penalty recorded)
  /// or surfaced as degradation — never as silent jitter. Null, or a plan
  /// with zero episodes, is bit-identical to today's behavior.
  const fault::Injector* injector = nullptr;
};

struct SimulationReport {
  std::string scheme;
  Distribution latency_minutes;       ///< empirical tune-in waits
  Distribution buffer_peak_mbits;     ///< per-client buffer peaks (SB only)
  int max_concurrent_downloads = 0;   ///< across all clients (SB only)
  std::uint64_t clients_served = 0;
  std::uint64_t jitter_events = 0;    ///< must stay 0 for a correct scheme
  core::MbitPerSec peak_server_rate{0.0};
  // Fault accounting (all zero without an injector): every hit is either
  // repaired or surfaced as degradation.
  std::uint64_t fault_hits = 0;       ///< downloads damaged by an episode
  std::uint64_t fault_repairs = 0;    ///< healed within the recovery policy
  std::uint64_t fault_degraded = 0;   ///< survived the retry budget
  Distribution fault_penalty_minutes; ///< per-repair extra wait, minutes
};

/// Simulates `scheme` on `input` under the given workload.
/// Precondition: the scheme is feasible at input.server_bandwidth.
[[nodiscard]] SimulationReport simulate(const schemes::BroadcastScheme& scheme,
                                        const schemes::DesignInput& input,
                                        const SimulationConfig& config);

/// R independent replications merged into one report, plus the
/// between-replication spread the single run cannot give.
struct ReplicatedReport {
  /// All replications folded together in replication order
  /// (Distribution::merge); counters summed, peaks maxed.
  SimulationReport merged;
  std::size_t replications = 0;
  /// One entry per replication, in replication order: that run's mean
  /// tune-in wait (minutes).
  Distribution replication_mean_latency;
  /// 95% confidence half-width on the mean tune-in wait, from the
  /// between-replication sample stddev (normal approximation,
  /// 1.96 * s / sqrt(R)); 0 when replications < 2.
  double latency_mean_ci95 = 0.0;
};

/// Runs `reps` independent replications of the simulation, each with a
/// private seed, report and (when config.sink is set) a private obs::Sink.
///
/// Determinism contract: replication r's seed is the (r+1)-th output of
/// util::SplitMix64 seeded with config.seed — a pure function of
/// (config.seed, r) — and every merge (sample distributions, metrics
/// registry, trace ring) happens after the join, in replication order. The
/// result is therefore bit-identical for any `pool`, including none.
///
/// Replication sinks fold into config.sink via Registry::merge_from /
/// Tracer::merge_from after the join. config.sampler is not forwarded to
/// replications (a time-series of R interleaved clocks is meaningless);
/// it stays null for each replication run.
[[nodiscard]] ReplicatedReport simulate_replicated(
    const schemes::BroadcastScheme& scheme, const schemes::DesignInput& input,
    const SimulationConfig& config, std::size_t reps,
    util::TaskPool* pool = nullptr);

/// Convenience overload: a positive `threads` > 1 runs the replications on
/// a temporary pool of that many workers; 0 or 1 runs them serially.
[[nodiscard]] ReplicatedReport simulate_replicated(
    const schemes::BroadcastScheme& scheme, const schemes::DesignInput& input,
    const SimulationConfig& config, std::size_t reps, unsigned threads);

}  // namespace vodbcast::sim
