#include "sim/broadcast_server.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/contracts.hpp"

namespace vodbcast::sim {

BroadcastServer::BroadcastServer(channel::ChannelPlan plan)
    : plan_(std::move(plan)) {}

std::optional<core::Minutes> BroadcastServer::next_segment_start(
    core::VideoId video, int segment, core::Minutes t) const {
  std::optional<core::Minutes> best;
  for (const auto& s : plan_.streams()) {
    if (s.video != video || s.segment != segment) {
      continue;
    }
    const core::Minutes start = s.next_start_at_or_after(t);
    if (!best.has_value() || start.v < best->v) {
      best = start;
    }
  }
  return best;
}

std::optional<core::Minutes> BroadcastServer::worst_wait(core::VideoId video,
                                                         int segment) const {
  // Collect the replica streams; the steady-state start sequence is the
  // union of arithmetic progressions phase_p + n*period (all replicas share
  // one period by construction). The worst wait is the largest gap between
  // consecutive starts within one period.
  std::vector<const channel::PeriodicBroadcast*> replicas;
  for (const auto& s : plan_.streams()) {
    if (s.video == video && s.segment == segment) {
      replicas.push_back(&s);
    }
  }
  if (replicas.empty()) {
    return std::nullopt;
  }
  const double period = replicas.front()->period.v;
  for (const auto* r : replicas) {
    VB_EXPECTS_MSG(std::abs(r->period.v - period) < 1e-9 * period,
                   "replicas of one segment must share a period");
  }
  std::vector<double> phases;
  phases.reserve(replicas.size());
  for (const auto* r : replicas) {
    phases.push_back(std::fmod(r->phase.v, period));
  }
  std::sort(phases.begin(), phases.end());
  double worst = phases.front() + period - phases.back();
  for (std::size_t i = 1; i < phases.size(); ++i) {
    worst = std::max(worst, phases[i] - phases[i - 1]);
  }
  return core::Minutes{worst};
}

core::MbitPerSec BroadcastServer::aggregate_rate_at(core::Minutes t) const {
  double total = 0.0;
  for (const auto& s : plan_.streams()) {
    if (s.transmitting_at(t)) {
      total += s.rate.v;
    }
  }
  return core::MbitPerSec{total};
}

}  // namespace vodbcast::sim
