#include "sim/broadcast_server.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/contracts.hpp"

namespace vodbcast::sim {

BroadcastServer::BroadcastServer(channel::ChannelPlan plan)
    : plan_(std::move(plan)) {
  // Index replicas once: tune-in queries run per client arrival, and a
  // metro plan carries thousands of streams of which only one or two are
  // replicas of the requested (video, segment). Indices (not pointers)
  // keep the map valid across copies and moves of the server.
  for (std::size_t i = 0; i < plan_.streams().size(); ++i) {
    const auto& s = plan_.streams()[i];
    replicas_[replica_key(s.video, s.segment)].push_back(
        static_cast<std::uint32_t>(i));
  }
}

const std::vector<std::uint32_t>* BroadcastServer::replicas_of(
    core::VideoId video, int segment) const {
  const auto it = replicas_.find(replica_key(video, segment));
  return it == replicas_.end() ? nullptr : &it->second;
}

std::optional<core::Minutes> BroadcastServer::next_segment_start(
    core::VideoId video, int segment, core::Minutes t) const {
  const auto* replicas = replicas_of(video, segment);
  if (replicas == nullptr) {
    return std::nullopt;
  }
  // Earliest-encountered wins ties, matching the historical full scan in
  // stream order bit for bit.
  std::optional<core::Minutes> best;
  for (const std::uint32_t i : *replicas) {
    const core::Minutes start =
        plan_.streams()[i].next_start_at_or_after(t);
    if (!best.has_value() || start.v < best->v) {
      best = start;
    }
  }
  return best;
}

std::optional<core::Minutes> BroadcastServer::worst_wait(core::VideoId video,
                                                         int segment) const {
  // Collect the replica streams; the steady-state start sequence is the
  // union of arithmetic progressions phase_p + n*period (all replicas share
  // one period by construction). The worst wait is the largest gap between
  // consecutive starts within one period.
  std::vector<const channel::PeriodicBroadcast*> replicas;
  if (const auto* indices = replicas_of(video, segment)) {
    for (const std::uint32_t i : *indices) {
      replicas.push_back(&plan_.streams()[i]);
    }
  }
  if (replicas.empty()) {
    return std::nullopt;
  }
  const double period = replicas.front()->period.v;
  for (const auto* r : replicas) {
    VB_EXPECTS_MSG(std::abs(r->period.v - period) < 1e-9 * period,
                   "replicas of one segment must share a period");
  }
  std::vector<double> phases;
  phases.reserve(replicas.size());
  for (const auto* r : replicas) {
    phases.push_back(std::fmod(r->phase.v, period));
  }
  std::sort(phases.begin(), phases.end());
  double worst = phases.front() + period - phases.back();
  for (std::size_t i = 1; i < phases.size(); ++i) {
    worst = std::max(worst, phases[i] - phases[i - 1]);
  }
  return core::Minutes{worst};
}

core::MbitPerSec BroadcastServer::aggregate_rate_at(core::Minutes t) const {
  double total = 0.0;
  for (const auto& s : plan_.streams()) {
    if (s.transmitting_at(t)) {
      total += s.rate.v;
    }
  }
  return core::MbitPerSec{total};
}

}  // namespace vodbcast::sim
