// Broadcast server: executes a ChannelPlan.
//
// The server side of periodic broadcast is stateless — every stream loops
// forever — so the server's job in the simulator is to answer tune-in
// queries ("when does the next broadcast of segment 1 of video v start after
// time t?") and to account for aggregate bandwidth.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "channel/schedule.hpp"
#include "core/units.hpp"
#include "core/video.hpp"

namespace vodbcast::sim {

class BroadcastServer {
 public:
  explicit BroadcastServer(channel::ChannelPlan plan);

  [[nodiscard]] const channel::ChannelPlan& plan() const noexcept {
    return plan_;
  }

  /// Earliest start of any replica of (video, segment) at or after `t`.
  /// Returns nullopt if the plan does not carry that segment.
  [[nodiscard]] std::optional<core::Minutes> next_segment_start(
      core::VideoId video, int segment, core::Minutes t) const;

  /// Worst tune-in wait for (video, segment): the largest gap between
  /// consecutive replica starts (the scheme's access latency when segment
  /// is 1). Returns nullopt if the plan does not carry that segment.
  [[nodiscard]] std::optional<core::Minutes> worst_wait(core::VideoId video,
                                                        int segment) const;

  /// Aggregate transmission rate at time t.
  [[nodiscard]] core::MbitPerSec aggregate_rate_at(core::Minutes t) const;

 private:
  /// Replica streams of (video, segment) as indices into plan_.streams(),
  /// in stream order. Tune-in queries are per-arrival in the simulator, so
  /// they must not scan the whole metro plan (thousands of streams) when
  /// only a handful of replicas carry the requested segment.
  [[nodiscard]] const std::vector<std::uint32_t>* replicas_of(
      core::VideoId video, int segment) const;

  static std::uint64_t replica_key(core::VideoId video,
                                   int segment) noexcept {
    return (static_cast<std::uint64_t>(video) << 32) |
           static_cast<std::uint32_t>(segment);
  }

  channel::ChannelPlan plan_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> replicas_;
};

}  // namespace vodbcast::sim
