// Discrete-event core: an allocation-free engine firing time-ordered
// callbacks.
//
// Used by the scheduled-multicast (batching) server and the end-to-end
// simulator. The hot path is built around two structures:
//
//   * an in-place 4-ary min-heap of POD `(time, seq, slot)` entries — a
//     sift touches a quarter of the levels of a binary heap and each level
//     is one cache line of children;
//   * a slab-allocated callback pool: each scheduled callable lives in a
//     fixed-size slot with a small-buffer region of `kInlineCaptureBytes`
//     (captures up to that size are stored in place; larger ones spill to
//     one heap box). Freed slots go on a free list and are recycled, so a
//     steady-state run performs no per-event allocation at all. In debug
//     builds freed slots are poisoned (0xDD) and slot liveness is asserted.
//
// step() *moves* the callback out of its slot onto the stack and recycles
// the slot before invoking, so callbacks may freely schedule new events
// (the pool may grow or be recycled under them).
//
// Determinism contract: events at equal times fire in insertion order
// (ties break on a monotonically increasing sequence number), which keeps
// runs deterministic for a fixed seed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/contracts.hpp"

namespace vodbcast::obs {
struct Sink;
class Counter;
class Gauge;
class Histogram;
}  // namespace vodbcast::obs

namespace vodbcast::sim {

/// Simulation time in minutes (matching the paper's reporting unit).
using SimTime = double;

class EventQueue {
 public:
  /// Captures at most this large (and max_align_t-alignable, nothrow move
  /// constructible) are stored inline in their slab slot; anything bigger
  /// pays one heap box per event (counted by `sim.event_queue.capture_spill`
  /// when a sink is attached).
  static constexpr std::size_t kInlineCaptureBytes = 48;

  /// Type-erased fallback; any callable invocable as `fn()` is accepted
  /// directly by schedule() without this indirection.
  using Callback = std::function<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;
  ~EventQueue();

  /// Schedules `fn` at absolute time `at`; `at` must not precede now().
  /// Accepts any callable invocable with no arguments; null callables
  /// (empty std::function, null function pointer) are rejected.
  template <typename F>
  void schedule(SimTime at, F&& fn) {
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_v<Fn&>,
                  "event callback must be invocable with no arguments");
    VB_EXPECTS_MSG(at >= now_, "cannot schedule into the past");
    if constexpr (requires { fn == nullptr; }) {
      VB_EXPECTS_MSG(!(fn == nullptr), "null event callback");
    }
    constexpr bool kFitsInline = sizeof(Fn) <= kInlineCaptureBytes &&
                                 alignof(Fn) <= alignof(std::max_align_t) &&
                                 std::is_nothrow_move_constructible_v<Fn>;
    const std::uint32_t handle = acquire_slot();
    Slot& slot = pool_[handle];
    try {
      if constexpr (kFitsInline) {
        ::new (static_cast<void*>(slot.storage)) Fn(std::forward<F>(fn));
        slot.ops = &InlineModel<Fn>::kOps;
      } else {
        ::new (static_cast<void*>(slot.storage))
            Fn*(new Fn(std::forward<F>(fn)));
        slot.ops = &BoxedModel<Fn>::kOps;
      }
      push_entry(at, handle);
    } catch (...) {
      if (slot.ops != nullptr) {
        slot.ops->destroy(slot.storage);
        slot.ops = nullptr;
      }
      release_slot(handle);
      throw;
    }
    if (sink_ != nullptr) {
      note_scheduled(!kFitsInline);
    }
  }

  /// Overload so the documented null-callback contract also covers a
  /// literal nullptr argument (a nullptr_t is not invocable).
  void schedule(SimTime at, std::nullptr_t) {
    VB_EXPECTS_MSG(at >= now_, "cannot schedule into the past");
    VB_EXPECTS_MSG(false, "null event callback");
  }

  /// Fires the earliest event; returns false when the queue is empty.
  bool step();

  /// Fires events while the earliest is at or before `until`, then advances
  /// the clock to `until` (even when the queue drained earlier — idle time
  /// passes too). Never moves time backwards: with `until < now()` nothing
  /// fires and now() is unchanged. Events after `until` stay pending and
  /// fire on a later step()/run_until().
  void run_until(SimTime until);

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

  /// Slots currently held by the slab pool (live + recycled); a high-water
  /// mark of concurrently pending events. Exposed for tests and sizing.
  [[nodiscard]] std::size_t slab_slots() const noexcept {
    return pool_.size();
  }

  /// Attaches an observability sink: schedule/fire counters, a queue-depth
  /// peak gauge, a per-callback cost histogram, the slab high-water gauge
  /// and the SBO-spill counter, all under "sim.event_queue.*". Null
  /// detaches. With no sink attached the hot path pays one pointer test
  /// per operation.
  void attach_sink(obs::Sink* sink);

 private:
  /// Per-callable-type vtable; one static instance per instantiation.
  struct Ops {
    /// Move-constructs the stored callable at `dst` from `src`, then
    /// destroys the source (plain pointer copy for boxed callables).
    void (*relocate)(void* dst, void* src) noexcept;
    void (*invoke)(void* obj);
    void (*destroy)(void* obj) noexcept;
  };

  /// One slab slot. `ops` is null while the slot sits on the free list;
  /// non-null means `storage` holds a live callable (or the box pointer).
  struct Slot {
    const Ops* ops = nullptr;
    std::uint32_t next_free = kNilSlot;
    alignas(std::max_align_t) std::byte storage[kInlineCaptureBytes];
  };

  /// POD heap entry: 4-ary min-heap ordering on (at, seq).
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  template <typename Fn>
  struct InlineModel {
    static void relocate(void* dst, void* src) noexcept {
      auto* from = std::launder(reinterpret_cast<Fn*>(src));
      ::new (dst) Fn(std::move(*from));
      from->~Fn();
    }
    static void invoke(void* obj) {
      (*std::launder(reinterpret_cast<Fn*>(obj)))();
    }
    static void destroy(void* obj) noexcept {
      std::launder(reinterpret_cast<Fn*>(obj))->~Fn();
    }
    static constexpr Ops kOps{&relocate, &invoke, &destroy};
  };

  template <typename Fn>
  struct BoxedModel {
    static Fn* box(void* obj) noexcept {
      return *std::launder(reinterpret_cast<Fn**>(obj));
    }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) Fn*(box(src));
    }
    static void invoke(void* obj) { (*box(obj))(); }
    static void destroy(void* obj) noexcept { delete box(obj); }
    static constexpr Ops kOps{&relocate, &invoke, &destroy};
  };

  /// Stack-side home of a callback moved out of its slot by step(); the
  /// destructor tears the callable down even when invoke() throws.
  struct DetachedCallback {
    const Ops* ops = nullptr;
    alignas(std::max_align_t) std::byte storage[kInlineCaptureBytes];

    DetachedCallback() = default;
    DetachedCallback(const DetachedCallback&) = delete;
    DetachedCallback& operator=(const DetachedCallback&) = delete;
    ~DetachedCallback() {
      if (ops != nullptr) {
        ops->destroy(storage);
      }
    }
  };

  static constexpr std::uint32_t kNilSlot = 0xffffffffU;

  [[nodiscard]] std::uint32_t acquire_slot();
  void release_slot(std::uint32_t handle) noexcept;
  /// Pushes the heap entry and assigns the tie-breaking sequence number.
  void push_entry(SimTime at, std::uint32_t handle);
  [[nodiscard]] Entry pop_entry() noexcept;
  /// Cold path of schedule(): updates the sink instruments.
  void note_scheduled(bool spilled);

  static bool before(const Entry& a, const Entry& b) noexcept {
    if (a.at != b.at) {
      return a.at < b.at;
    }
    return a.seq < b.seq;
  }

  std::vector<Entry> heap_;
  std::vector<Slot> pool_;
  std::uint32_t free_head_ = kNilSlot;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;

  // Instrument handles are resolved once in attach_sink(); null when no
  // sink is attached.
  obs::Sink* sink_ = nullptr;
  obs::Counter* scheduled_ = nullptr;
  obs::Counter* fired_ = nullptr;
  obs::Counter* capture_spill_ = nullptr;
  obs::Gauge* pending_peak_ = nullptr;
  obs::Gauge* slab_slots_ = nullptr;
  obs::Histogram* callback_ns_ = nullptr;
};

}  // namespace vodbcast::sim
