// Discrete-event core: a time-ordered queue of callbacks.
//
// Used by the scheduled-multicast (batching) server and the end-to-end
// simulator. Events at equal times fire in insertion order, which keeps
// runs deterministic for a fixed seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace vodbcast::obs {
struct Sink;
class Counter;
class Gauge;
class Histogram;
}  // namespace vodbcast::obs

namespace vodbcast::sim {

/// Simulation time in minutes (matching the paper's reporting unit).
using SimTime = double;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute time `at`; `at` must not precede now().
  void schedule(SimTime at, Callback fn);

  /// Fires the earliest event; returns false when the queue is empty.
  bool step();

  /// Runs events until the queue is empty or the next event is after
  /// `until`; time advances to min(until, last fired event).
  void run_until(SimTime until);

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

  /// Attaches an observability sink: schedule/fire counters, a queue-depth
  /// peak gauge and a per-callback cost histogram under "sim.event_queue.*".
  /// Null detaches. With no sink attached the hot path pays one pointer
  /// test per operation.
  void attach_sink(obs::Sink* sink);

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;

  // Instrument handles are resolved once in attach_sink(); null when no
  // sink is attached.
  obs::Sink* sink_ = nullptr;
  obs::Counter* scheduled_ = nullptr;
  obs::Counter* fired_ = nullptr;
  obs::Gauge* pending_peak_ = nullptr;
  obs::Histogram* callback_ns_ = nullptr;
};

}  // namespace vodbcast::sim
