#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/contracts.hpp"
#include "util/math.hpp"

namespace vodbcast::sim {

void Distribution::add(double sample) {
  samples_.push_back(sample);
  sum_ += sample;
  sorted_valid_ = false;
}

void Distribution::merge(const Distribution& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sum_ += other.sum_;
  sorted_valid_ = false;
}

double Distribution::mean() const {
  VB_EXPECTS(!samples_.empty());
  return sum_ / static_cast<double>(samples_.size());
}

void Distribution::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Distribution::min() const {
  VB_EXPECTS(!samples_.empty());
  ensure_sorted();
  return sorted_.front();
}

double Distribution::max() const {
  VB_EXPECTS(!samples_.empty());
  ensure_sorted();
  return sorted_.back();
}

double Distribution::quantile(double q) const {
  VB_EXPECTS(!samples_.empty());
  VB_EXPECTS(q >= 0.0 && q <= 1.0);
  ensure_sorted();
  return util::interpolated_quantile(sorted_, q);
}

double Distribution::stddev() const {
  VB_EXPECTS(!samples_.empty());
  if (samples_.size() < 2) {
    return 0.0;
  }
  // Two-pass: center first, then accumulate squared deviations. The
  // sum_sq/n - m^2 identity loses every significant digit when the mean is
  // large against the spread (latencies offset by a big horizon).
  const double m = mean();
  double acc = 0.0;
  for (const double s : samples_) {
    const double d = s - m;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

HistogramBins Distribution::histogram(std::size_t bins) const {
  VB_EXPECTS(!samples_.empty());
  VB_EXPECTS(bins >= 1);
  HistogramBins out;
  out.lo = min();
  out.hi = max();
  out.counts.assign(bins, 0);
  const double width = (out.hi - out.lo) / static_cast<double>(bins);
  for (const double s : samples_) {
    std::size_t index = 0;
    if (width > 0.0) {
      index = static_cast<std::size_t>((s - out.lo) / width);
      index = std::min(index, bins - 1);  // top edge is inclusive
    }
    ++out.counts[index];
  }
  return out;
}

std::string Distribution::summary() const {
  if (samples_.empty()) {
    return "n=0";
  }
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "n=%zu mean=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g",
                samples_.size(), mean(), quantile(0.5), quantile(0.95),
                quantile(0.99), max());
  return buf;
}

}  // namespace vodbcast::sim
