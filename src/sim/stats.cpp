#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/contracts.hpp"
#include "util/math.hpp"

namespace vodbcast::sim {

namespace {

/// One sketch bucket lives in a std::map node: key + count + tree overhead.
constexpr std::size_t kSketchBucketBytes = 48;

}  // namespace

Distribution::Distribution(const Distribution& other)
    : samples_(other.samples_),
      cap_(other.cap_),
      count_(other.count_),
      sum_(other.sum_),
      min_(other.min_),
      max_(other.max_),
      welford_mean_(other.welford_mean_),
      welford_m2_(other.welford_m2_) {
  if (other.sketch_ != nullptr) {
    // QuantileSketch is non-copyable; an empty sketch on the same bucket
    // grid plus a bucket-wise merge reproduces the state exactly.
    sketch_ = std::make_unique<obs::QuantileSketch>(other.sketch_->options());
    sketch_->merge_from(*other.sketch_);
  }
}

Distribution& Distribution::operator=(const Distribution& other) {
  if (this != &other) {
    Distribution copy(other);
    *this = std::move(copy);
  }
  return *this;
}

void Distribution::add(double sample) {
  if (count_ == 0) {
    min_ = sample;
    max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  sum_ += sample;
  const double delta = sample - welford_mean_;
  welford_mean_ += delta / static_cast<double>(count_);
  welford_m2_ += delta * (sample - welford_mean_);
  if (sketch_ != nullptr) {
    sketch_->observe(sample);
    return;
  }
  if (cap_ != 0 && samples_.size() >= cap_) {
    fold_now();
    sketch_->observe(sample);
    return;
  }
  samples_.push_back(sample);
}

void Distribution::fold_now() {
  if (sketch_ == nullptr) {
    sketch_ = std::make_unique<obs::QuantileSketch>();
  }
  for (const double s : samples_) {
    sketch_->observe(s);
  }
  samples_.clear();
  samples_.shrink_to_fit();
}

void Distribution::merge(const Distribution& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  // Chan's parallel combination of the streaming moments; merging in a
  // fixed shard order keeps the floats bit-identical at any thread count.
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.welford_mean_ - welford_mean_;
  welford_mean_ += delta * nb / (na + nb);
  welford_m2_ += other.welford_m2_ + delta * delta * na * nb / (na + nb);
  count_ += other.count_;
  sum_ += other.sum_;

  const bool must_fold =
      sketch_ != nullptr || other.sketch_ != nullptr ||
      (cap_ != 0 && samples_.size() + other.samples_.size() > cap_);
  if (!must_fold) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    return;
  }
  fold_now();
  for (const double s : other.samples_) {
    sketch_->observe(s);
  }
  if (other.sketch_ != nullptr) {
    sketch_->merge_from(*other.sketch_);
  }
}

void Distribution::set_sample_cap(std::size_t cap) {
  cap_ = cap;
  if (cap_ != 0 && samples_.size() > cap_) {
    fold_now();
  }
}

std::uint64_t Distribution::samples_folded() const noexcept {
  return sketch_ != nullptr ? sketch_->count() : 0;
}

double Distribution::mean() const {
  VB_EXPECTS(count_ != 0);
  return sum_ / static_cast<double>(count_);
}

double Distribution::min() const {
  VB_EXPECTS(count_ != 0);
  return min_;
}

double Distribution::max() const {
  VB_EXPECTS(count_ != 0);
  return max_;
}

std::vector<double> Distribution::sorted_copy() const {
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

double Distribution::quantile(double q) const {
  VB_EXPECTS(count_ != 0);
  VB_EXPECTS(q >= 0.0 && q <= 1.0);
  if (sketch_ != nullptr) {
    return sketch_->quantile(q);
  }
  // Scratch sort, freed on return: the distribution never retains a second
  // copy of its samples between queries.
  return util::interpolated_quantile(sorted_copy(), q);
}

double Distribution::stddev() const {
  VB_EXPECTS(count_ != 0);
  if (count_ < 2) {
    return 0.0;
  }
  if (sketch_ != nullptr) {
    return std::sqrt(welford_m2_ / static_cast<double>(count_));
  }
  // Two-pass: center first, then accumulate squared deviations. The
  // sum_sq/n - m^2 identity loses every significant digit when the mean is
  // large against the spread (latencies offset by a big horizon).
  const double m = mean();
  double acc = 0.0;
  for (const double s : samples_) {
    const double d = s - m;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(count_));
}

std::size_t Distribution::retained_bytes() const noexcept {
  std::size_t bytes = samples_.capacity() * sizeof(double);
  if (sketch_ != nullptr) {
    bytes += sketch_->bucket_count() * kSketchBucketBytes;
  }
  return bytes;
}

HistogramBins Distribution::histogram(std::size_t bins) const {
  VB_EXPECTS(count_ != 0);
  VB_EXPECTS(bins >= 1);
  VB_EXPECTS_MSG(sketch_ == nullptr,
                 "histogram() needs the raw samples; distribution is folded");
  HistogramBins out;
  out.lo = min();
  out.hi = max();
  out.counts.assign(bins, 0);
  const double width = (out.hi - out.lo) / static_cast<double>(bins);
  for (const double s : samples_) {
    std::size_t index = 0;
    if (width > 0.0) {
      index = static_cast<std::size_t>((s - out.lo) / width);
      index = std::min(index, bins - 1);  // top edge is inclusive
    }
    ++out.counts[index];
  }
  return out;
}

std::string Distribution::summary() const {
  if (count_ == 0) {
    return "n=0";
  }
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "n=%zu mean=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g",
                count(), mean(), quantile(0.5), quantile(0.95),
                quantile(0.99), max());
  std::string out = buf;
  if (sketch_ != nullptr) {
    out += " folded=" + std::to_string(samples_folded());
  }
  return out;
}

}  // namespace vodbcast::sim
