#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "client/plan_cache.hpp"
#include "client/reception_plan.hpp"
#include "fault/injector.hpp"
#include "obs/log.hpp"
#include "sim/event_queue.hpp"
#include "obs/timer.hpp"
#include "schemes/skyscraper.hpp"
#include "util/contracts.hpp"
#include "workload/zipf.hpp"

namespace vodbcast::sim {

namespace {

/// Traces the first broadcast slots of every stream so a trace viewer shows
/// the channel layout alongside the client activity. Capped per stream: the
/// schedule is periodic, so a handful of periods carries the full pattern.
void trace_channel_slots(obs::Sink& sink, const channel::ChannelPlan& plan,
                         core::Minutes horizon) {
  constexpr int kSlotsPerStream = 16;
  for (const auto& stream : plan.streams()) {
    double start = stream.phase.v;
    for (int i = 0; i < kSlotsPerStream && start < horizon.v; ++i) {
      sink.trace.record(obs::TraceEvent{
          .sim_time_min = start,
          .kind = obs::EventKind::kChannelSlotStart,
          .channel = stream.logical_channel,
          .video = stream.video,
          .client = 0,
          .value = stream.transmission.v,
      });
      start += stream.period.v;
    }
  }
}

/// Traces one client's exact reception plan (tuner joins and releases),
/// both as instant trace events and as segment_download spans hanging off
/// the client's session span (channel = segment index, so the chrome export
/// draws each download on its segment track with a flow arrow from the
/// session).
void trace_reception(obs::Sink& sink, const client::PlanView& plan,
                     double d1, core::VideoId video, std::uint64_t client,
                     std::uint64_t session_span) {
  for (std::size_t i = 0; i < plan.download_count(); ++i) {
    const auto d = plan.download(i);
    const double start_min = static_cast<double>(d.start) * d1;
    const double length_min = static_cast<double>(d.length) * d1;
    sink.trace.record(obs::TraceEvent{
        .sim_time_min = start_min,
        .kind = obs::EventKind::kSegmentDownloadStart,
        .channel = d.segment,
        .video = video,
        .client = client,
        .value = length_min,
    });
    sink.trace.record(obs::TraceEvent{
        .sim_time_min = start_min + length_min,
        .kind = obs::EventKind::kSegmentDownloadEnd,
        .channel = d.segment,
        .video = video,
        .client = client,
        .value = 0.0,
    });
    sink.spans.record(obs::Span{
        .parent = session_span,
        .start_min = start_min,
        .end_min = start_min + length_min,
        .phase = obs::SpanPhase::kSegmentDownload,
        .channel = d.segment,
        .video = video,
        .client = client,
        .value = length_min,
        .label = {},
    });
  }
}

}  // namespace

SimulationReport simulate(const schemes::BroadcastScheme& scheme,
                          const schemes::DesignInput& input,
                          const SimulationConfig& config) {
  const auto design = scheme.design(input);
  VB_EXPECTS_MSG(design.has_value(), "scheme infeasible at this bandwidth");

  obs::Sink* sink = config.sink;
  obs::ScopedTimer run_timer(
      sink != nullptr
          ? &sink->metrics.histogram("sim.simulate_ns",
                                     obs::default_time_bounds_ns())
          : nullptr);

  BroadcastServer server(scheme.plan(input, *design));

  SimulationReport report;
  report.scheme = scheme.name();
  report.peak_server_rate = server.plan().peak_aggregate_rate();
  report.latency_minutes.set_sample_cap(config.stats_sample_cap);
  report.buffer_peak_mbits.set_sample_cap(config.stats_sample_cap);
  report.fault_penalty_minutes.set_sample_cap(config.stats_sample_cap);

  if (sink != nullptr) {
    obs::logf(obs::LogLevel::kDebug,
              "simulate: scheme=%s horizon=%.1fmin rate=%.2f/min",
              report.scheme.c_str(), config.horizon.v,
              config.arrivals_per_minute);
    // max_of, not set: several runs may share one sink (bench sweeps), and
    // a "peak" gauge should survive a later, smaller run.
    sink->metrics.gauge("sim.peak_server_rate_mbps")
        .max_of(report.peak_server_rate.v);
    trace_channel_slots(*sink, server.plan(), config.horizon);
    // Per-channel duty cycle of the periodic schedule: each stream occupies
    // its logical channel for transmission/period of the time, and
    // subchannels of one channel add up.
    auto& util_family = sink->metrics.gauge_family(
        "sim.channel.utilization", {"channel"},
        server.plan().streams().size() + 1);
    std::map<int, double> duty;
    for (const auto& stream : server.plan().streams()) {
      duty[stream.logical_channel] += stream.transmission.v / stream.period.v;
    }
    for (const auto& [channel, utilization] : duty) {
      util_family.with_ids({static_cast<std::uint64_t>(channel)})
          .max_of(std::min(utilization, 1.0));
    }
    if (config.injector != nullptr && !config.injector->plan().empty()) {
      fault::trace_plan(*sink, config.injector->plan());
    }
  }

  // The simulated population requests only the M broadcast videos; within
  // them the paper's Zipf skew still applies (rank 1 is hottest).
  const auto popularity = workload::zipf_probabilities(
      static_cast<std::size_t>(input.num_videos));
  workload::RequestGenerator generator(popularity,
                                       config.arrivals_per_minute,
                                       util::Rng(config.seed));

  // For SB clients we run the exact reception plan; resolve the layout once.
  const auto* sb = dynamic_cast<const schemes::SkyscraperScheme*>(&scheme);
  std::optional<series::SegmentLayout> layout;
  if (sb != nullptr && config.plan_clients) {
    layout.emplace(sb->layout(input, *design));
  }
  // Phase-keyed plan cache: one canonical plan per arrival phase, every
  // other arrival served as a shifted view. Private to this run, so the
  // replication bit-identity contract is untouched.
  std::optional<client::PlanCache> cache;
  if (layout.has_value() && config.plan_cache) {
    cache.emplace(*layout);
  }

  // Time-series probes read simulation locals; the ProbeScope unregisters
  // them before those locals die. last_buffer_peak_units tracks the most
  // recent planned client's peak occupancy — a utilization-style series the
  // aggregate histogram cannot show.
  double last_buffer_peak_units = 0.0;
  obs::ProbeScope probes(config.sampler);
  probes.add("sim.clients_served", [&report] {
    return static_cast<double>(report.clients_served);
  });
  probes.add("sim.jitter_events", [&report] {
    return static_cast<double>(report.jitter_events);
  });
  if (layout.has_value()) {
    probes.add("client.last_buffer_peak_units",
               [&last_buffer_peak_units] { return last_buffer_peak_units; });
  }

  // Instrument handles resolved once, outside the per-client loop.
  obs::Counter* clients_counter = nullptr;
  obs::Counter* jitter_counter = nullptr;
  obs::Histogram* wait_hist = nullptr;
  obs::Histogram* plan_ns = nullptr;
  obs::Histogram* plan_cache_hit_ns = nullptr;
  obs::QuantileSketch* wait_sketch = nullptr;
  // Per-title wait sketches, indexed by video id. The family is sized to
  // the catalog so no title folds into overflow; handles resolve here,
  // once, and the arrival hot path only touches the sketch.
  std::vector<obs::QuantileSketch*> title_wait;
  if (sink != nullptr) {
    clients_counter = &sink->metrics.counter("sim.clients_served");
    jitter_counter = &sink->metrics.counter("sim.jitter_events");
    wait_hist = &sink->metrics.histogram("sim.tune_wait_min",
                                         obs::default_latency_bounds_min());
    wait_sketch = &sink->metrics.sketch("sim.tune_wait_sketch_min");
    auto& wait_family = sink->metrics.sketch_family(
        "sb.client.wait", {"title"}, {},
        static_cast<std::size_t>(input.num_videos) + 1);
    // Video ids are 0-based Zipf ranks (0 = hottest).
    title_wait.resize(static_cast<std::size_t>(input.num_videos), nullptr);
    for (std::size_t v = 0; v < title_wait.size(); ++v) {
      title_wait[v] = &wait_family.with_ids({v});
    }
    if (layout.has_value()) {
      plan_ns = &sink->metrics.histogram("client.plan_reception_ns",
                                         obs::default_time_bounds_ns());
      if (cache.has_value()) {
        // The A/B partner of plan_reception_ns: lookups that served a
        // cached canonical plan land here instead.
        plan_cache_hit_ns = &sink->metrics.histogram(
            "client.plan_cache_hit_ns", obs::default_time_bounds_ns());
      }
    }
  }

  // One event per client arrival, driven through the discrete-event engine.
  // Arrivals are generated in nondecreasing time and equal-time events fire
  // in insertion order, so the report is identical to a plain loop — but
  // the run now exercises (and is metered by) the same engine as the
  // batching server, and future server-side events interleave naturally.
  const auto handle_arrival = [&](const workload::Request& request) {
    probes.advance(request.arrival.v);
    const auto start =
        server.next_segment_start(request.video, 1, request.arrival);
    VB_ASSERT(start.has_value());
    const double wait = start->v - request.arrival.v;
    report.latency_minutes.add(wait);
    ++report.clients_served;
    std::uint64_t session_span = 0;
    if (sink != nullptr) {
      clients_counter->add();
      wait_hist->observe(wait);
      wait_sketch->observe(wait);
      title_wait[static_cast<std::size_t>(request.video)]->observe(wait);
      sink->trace.record(obs::TraceEvent{
          .sim_time_min = request.arrival.v,
          .kind = obs::EventKind::kClientArrival,
          .channel = 0,
          .video = request.video,
          .client = report.clients_served,
          .value = 0.0,
      });
      sink->trace.record(obs::TraceEvent{
          .sim_time_min = start->v,
          .kind = obs::EventKind::kTuneIn,
          .channel = 0,
          .video = request.video,
          .client = report.clients_served,
          .value = wait,
      });
      // Causal span tree: session covers arrival → playback end, with a
      // tune child for the wait (its duration *is* the reported wait — the
      // invariant trace_analyze --check leans on) and a playback child for
      // the consumption window. Download children follow per planned client.
      const double session_end = start->v + input.video.duration.v;
      session_span = sink->spans.record(obs::Span{
          .start_min = request.arrival.v,
          .end_min = session_end,
          .phase = obs::SpanPhase::kSession,
          .channel = 0,
          .video = request.video,
          .client = report.clients_served,
          .value = wait,
          .label = {},
      });
      sink->spans.record(obs::Span{
          .parent = session_span,
          .start_min = request.arrival.v,
          .end_min = start->v,
          .phase = obs::SpanPhase::kTune,
          .channel = 0,
          .video = request.video,
          .client = report.clients_served,
          .value = wait,
          .label = {},
      });
      sink->spans.record(obs::Span{
          .parent = session_span,
          .start_min = start->v,
          .end_min = session_end,
          .phase = obs::SpanPhase::kPlayback,
          .channel = 0,
          .video = request.video,
          .client = report.clients_served,
          .value = input.video.duration.v,
          .label = {},
      });
    }

    if (layout.has_value()) {
      // Playback starts at the joined broadcast, i.e. slot
      // round(start / D1); the quotient is integral up to rounding noise.
      const double d1 = layout->unit_duration().v;
      const auto t0 = static_cast<std::uint64_t>(
          std::llround(start->v / d1));
      client::ReceptionPlan local_plan;
      client::PlanView plan;
      if (cache.has_value()) {
        // A cheap contains() probe picks the timer before the clock starts,
        // so hit and miss latencies land in separate histograms.
        const bool cached = cache->contains(t0);
        const obs::ScopedTimer plan_timer(cached ? plan_cache_hit_ns
                                                 : plan_ns);
        plan = cache->at(t0);
      } else {
        const obs::ScopedTimer plan_timer(plan_ns);
        local_plan = client::plan_reception(*layout, t0);
        plan = client::PlanView(local_plan, 0, false);
      }
      if (!plan.jitter_free()) {
        ++report.jitter_events;
        obs::logf(obs::LogLevel::kWarn,
                  "simulate: jitter for client %llu of video %llu (t0=%llu)",
                  static_cast<unsigned long long>(report.clients_served),
                  static_cast<unsigned long long>(request.video),
                  static_cast<unsigned long long>(t0));
        if (sink != nullptr) {
          jitter_counter->add();
          sink->trace.record(obs::TraceEvent{
              .sim_time_min = start->v,
              .kind = obs::EventKind::kJitter,
              .channel = 0,
              .video = request.video,
              .client = report.clients_served,
              .value = 0.0,
          });
        }
      }
      report.max_concurrent_downloads =
          std::max(report.max_concurrent_downloads,
                   plan.max_concurrent_downloads());
      last_buffer_peak_units =
          static_cast<double>(plan.max_buffer_units());
      report.buffer_peak_mbits.add(plan.max_buffer(*layout).v);
      if (sink != nullptr) {
        trace_reception(*sink, plan, d1, request.video,
                        report.clients_served, session_span);
      }

      if (config.injector != nullptr && !config.injector->plan().empty()) {
        // Assess each planned download against the fault plan and play the
        // recovery policy forward. Damage never becomes silent jitter: it
        // is either repaired (catch-up on a later repetition, or a disk
        // stall absorbed in place, both with the wait penalty recorded) or
        // surfaced as degradation.
        // Views hand out downloads already shifted into absolute time, so
        // damage is assessed against the arrival's real windows — cached
        // plans can never alias another episode's damage.
        for (std::size_t di = 0; di < plan.download_count(); ++di) {
          const auto d = plan.download(di);
          const double w_begin = static_cast<double>(d.start) * d1;
          const double w_end = static_cast<double>(d.end()) * d1;
          const double deadline_min = static_cast<double>(d.deadline) * d1;
          const double period_min = static_cast<double>(d.length) * d1;
          const auto damage = fault::assess_download(
              config.injector, w_begin, w_end, d.segment, period_min,
              report.clients_served * 4096 +
                  static_cast<std::uint64_t>(d.segment));
          if (!damage.damaged) {
            continue;
          }
          ++report.fault_hits;
          const auto episode = static_cast<double>(damage.episode);
          if (sink != nullptr) {
            sink->metrics.counter_family("fault.hits", {"kind"})
                .with_ids({static_cast<std::uint64_t>(
                    config.injector->plan()
                        .episodes()[damage.episode]
                        .kind)})
                .add();
            sink->trace.record(obs::TraceEvent{
                .sim_time_min = w_end,
                .kind = obs::EventKind::kFaultHit,
                .channel = d.segment,
                .video = request.video,
                .client = report.clients_served,
                .value = episode,
            });
          }
          if (damage.repaired) {
            ++report.fault_repairs;
            // Download and playback both run at the display rate, so a
            // catch-up that slides the download later stalls every byte by
            // the same amount: the penalty is the effective start's
            // overshoot past the segment's playback deadline.
            const double effective_start =
                damage.repaired_at_min - (w_end - w_begin);
            const double penalty =
                std::max(0.0, effective_start - deadline_min);
            report.fault_penalty_minutes.add(penalty);
            if (sink != nullptr) {
              sink->metrics.counter("fault.repairs").add();
              sink->metrics.sketch("fault.repair_penalty_min")
                  .observe(penalty);
              sink->trace.record(obs::TraceEvent{
                  .sim_time_min = damage.repaired_at_min,
                  .kind = obs::EventKind::kRepair,
                  .channel = d.segment,
                  .video = request.video,
                  .client = report.clients_served,
                  .value = penalty,
              });
              sink->spans.record(obs::Span{
                  .parent = session_span,
                  .start_min = w_end,
                  .end_min = damage.repaired_at_min,
                  .phase = obs::SpanPhase::kRepair,
                  .channel = d.segment,
                  .video = request.video,
                  .client = report.clients_served,
                  .value = penalty,
                  .label = {},
              });
            }
          } else {
            ++report.fault_degraded;
            if (sink != nullptr) {
              sink->metrics.counter("fault.degraded").add();
              sink->trace.record(obs::TraceEvent{
                  .sim_time_min =
                      w_end + static_cast<double>(damage.retries) * period_min,
                  .kind = obs::EventKind::kFaultDegraded,
                  .channel = d.segment,
                  .video = request.video,
                  .client = report.clients_served,
                  .value = episode,
              });
            }
          }
        }
      }
    }
  };

  EventQueue events;
  events.attach_sink(sink);
  for (const auto& request : generator.generate_until(config.horizon)) {
    // 24-byte capture: handler pointer + request, inside the inline budget.
    events.schedule(request.arrival.v,
                    [&handle_arrival, request] { handle_arrival(request); });
  }
  events.run_until(config.horizon.v);

  probes.advance(config.horizon.v);
  if (sink != nullptr) {
    sink->metrics.gauge("sim.max_concurrent_downloads")
        .max_of(static_cast<double>(report.max_concurrent_downloads));
    if (cache.has_value()) {
      const auto& cs = cache->stats();
      // Counters so replication sinks sum: hits + misses == clients_served
      // is the invariant scripts/verify_all.sh asserts via metrics_check.
      sink->metrics.counter("sim.plan_cache.hits").add(cs.hits);
      sink->metrics.counter("sim.plan_cache.misses").add(cs.misses);
      sink->metrics.gauge("sim.plan_cache.entries")
          .max_of(static_cast<double>(cs.entries));
      sink->metrics.gauge("sim.plan_cache.bytes")
          .max_of(static_cast<double>(cs.bytes));
    }
    sink->metrics.counter("sim.stats.samples_folded")
        .add(report.latency_minutes.samples_folded() +
             report.buffer_peak_mbits.samples_folded() +
             report.fault_penalty_minutes.samples_folded());
    obs::logf(obs::LogLevel::kDebug,
              "simulate: done, %llu clients, %llu jitter events",
              static_cast<unsigned long long>(report.clients_served),
              static_cast<unsigned long long>(report.jitter_events));
  }
  return report;
}

ReplicatedReport simulate_replicated(const schemes::BroadcastScheme& scheme,
                                     const schemes::DesignInput& input,
                                     const SimulationConfig& config,
                                     std::size_t reps,
                                     util::TaskPool* pool) {
  VB_EXPECTS(reps >= 1);

  // Seed rule (see header): replication r <- (r+1)-th SplitMix64 output.
  // Derived up front so the schedule is independent of execution order.
  util::SplitMix64 seed_stream(config.seed);
  std::vector<std::uint64_t> seeds(reps);
  for (auto& seed : seeds) {
    seed = seed_stream.next();
  }

  // Each replication runs against private state; nothing below is shared
  // between workers until the post-join merge.
  std::vector<SimulationReport> reports(reps);
  std::vector<std::unique_ptr<obs::Sink>> sinks(reps);
  util::parallel_for_each(pool, reps, [&](std::size_t r) {
    SimulationConfig rep_config = config;
    rep_config.seed = seeds[r];
    rep_config.sampler = nullptr;
    rep_config.sink = nullptr;
    if (config.sink != nullptr) {
      sinks[r] = std::make_unique<obs::Sink>(config.sink->trace.capacity(),
                                             config.sink->spans.capacity());
      rep_config.sink = sinks[r].get();
    }
    reports[r] = simulate(scheme, input, rep_config);
  });

  // All merges below run on this thread, in replication order — the floats
  // accumulate in the same order at any thread count.
  ReplicatedReport result;
  result.replications = reps;
  result.merged.scheme = reports.front().scheme;
  result.merged.peak_server_rate = reports.front().peak_server_rate;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto& rep = reports[r];
    result.merged.latency_minutes.merge(rep.latency_minutes);
    result.merged.buffer_peak_mbits.merge(rep.buffer_peak_mbits);
    result.merged.max_concurrent_downloads =
        std::max(result.merged.max_concurrent_downloads,
                 rep.max_concurrent_downloads);
    result.merged.clients_served += rep.clients_served;
    result.merged.jitter_events += rep.jitter_events;
    result.merged.fault_hits += rep.fault_hits;
    result.merged.fault_repairs += rep.fault_repairs;
    result.merged.fault_degraded += rep.fault_degraded;
    result.merged.fault_penalty_minutes.merge(rep.fault_penalty_minutes);
    if (!rep.latency_minutes.empty()) {
      result.replication_mean_latency.add(rep.latency_minutes.mean());
    }
    if (config.sink != nullptr) {
      config.sink->metrics.merge_from(sinks[r]->metrics);
      config.sink->trace.merge_from(sinks[r]->trace);
      config.sink->spans.merge_from(sinks[r]->spans);
    }
  }

  const auto n = result.replication_mean_latency.count();
  if (n >= 2) {
    // Population -> sample stddev, then the normal-approximation interval.
    const double pop = result.replication_mean_latency.stddev();
    const double s = pop * std::sqrt(static_cast<double>(n) /
                                     static_cast<double>(n - 1));
    result.latency_mean_ci95 = 1.96 * s / std::sqrt(static_cast<double>(n));
  }
  return result;
}

ReplicatedReport simulate_replicated(const schemes::BroadcastScheme& scheme,
                                     const schemes::DesignInput& input,
                                     const SimulationConfig& config,
                                     std::size_t reps, unsigned threads) {
  if (threads <= 1) {
    return simulate_replicated(scheme, input, config, reps,
                               static_cast<util::TaskPool*>(nullptr));
  }
  util::TaskPool pool(threads);
  return simulate_replicated(scheme, input, config, reps, &pool);
}

}  // namespace vodbcast::sim
