#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>

#include "client/reception_plan.hpp"
#include "schemes/skyscraper.hpp"
#include "util/contracts.hpp"
#include "workload/zipf.hpp"

namespace vodbcast::sim {

SimulationReport simulate(const schemes::BroadcastScheme& scheme,
                          const schemes::DesignInput& input,
                          const SimulationConfig& config) {
  const auto design = scheme.design(input);
  VB_EXPECTS_MSG(design.has_value(), "scheme infeasible at this bandwidth");

  BroadcastServer server(scheme.plan(input, *design));

  SimulationReport report;
  report.scheme = scheme.name();
  report.peak_server_rate = server.plan().peak_aggregate_rate();

  // The simulated population requests only the M broadcast videos; within
  // them the paper's Zipf skew still applies (rank 1 is hottest).
  const auto popularity = workload::zipf_probabilities(
      static_cast<std::size_t>(input.num_videos));
  workload::RequestGenerator generator(popularity,
                                       config.arrivals_per_minute,
                                       util::Rng(config.seed));

  // For SB clients we run the exact reception plan; resolve the layout once.
  const auto* sb = dynamic_cast<const schemes::SkyscraperScheme*>(&scheme);
  std::optional<series::SegmentLayout> layout;
  if (sb != nullptr && config.plan_clients) {
    layout.emplace(sb->layout(input, *design));
  }

  for (const auto& request : generator.generate_until(config.horizon)) {
    const auto start =
        server.next_segment_start(request.video, 1, request.arrival);
    VB_ASSERT(start.has_value());
    report.latency_minutes.add(start->v - request.arrival.v);
    ++report.clients_served;

    if (layout.has_value()) {
      // Playback starts at the joined broadcast, i.e. slot
      // round(start / D1); the quotient is integral up to rounding noise.
      const double d1 = layout->unit_duration().v;
      const auto t0 = static_cast<std::uint64_t>(
          std::llround(start->v / d1));
      const client::ReceptionPlan plan =
          client::plan_reception(*layout, t0);
      if (!plan.jitter_free) {
        ++report.jitter_events;
      }
      report.max_concurrent_downloads =
          std::max(report.max_concurrent_downloads,
                   plan.max_concurrent_downloads);
      report.buffer_peak_mbits.add(plan.max_buffer(*layout).v);
    }
  }
  return report;
}

}  // namespace vodbcast::sim
