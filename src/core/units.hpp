// Strongly-typed physical quantities for the broadcasting domain.
//
// The paper mixes minutes, Mbit/s, Mbits and MBytes freely; unit slips (the
// classic 60x and 8x factors) are the dominant source of bugs when
// re-deriving its formulas. Each dimension gets its own type so the compiler
// rejects e.g. adding a duration to a data size, while the conversions that
// are legitimate (rate x duration = size) are provided explicitly.
#pragma once

#include <compare>
#include <string>

namespace vodbcast::core {

namespace detail {

/// CRTP base providing the affine arithmetic all quantities share.
template <class Derived>
struct QuantityOps {
  double v = 0.0;

  friend constexpr Derived operator+(Derived a, Derived b) noexcept {
    return Derived{a.v + b.v};
  }
  friend constexpr Derived operator-(Derived a, Derived b) noexcept {
    return Derived{a.v - b.v};
  }
  friend constexpr Derived operator*(double s, Derived a) noexcept {
    return Derived{s * a.v};
  }
  friend constexpr Derived operator*(Derived a, double s) noexcept {
    return Derived{a.v * s};
  }
  friend constexpr Derived operator/(Derived a, double s) noexcept {
    return Derived{a.v / s};
  }
  friend constexpr double operator/(Derived a, Derived b) noexcept {
    return a.v / b.v;
  }
  friend constexpr auto operator<=>(Derived a, Derived b) noexcept {
    return a.v <=> b.v;
  }
  friend constexpr bool operator==(Derived a, Derived b) noexcept {
    return a.v == b.v;
  }
  constexpr Derived& operator+=(Derived b) noexcept {
    v += b.v;
    return static_cast<Derived&>(*this);
  }
  constexpr Derived& operator-=(Derived b) noexcept {
    v -= b.v;
    return static_cast<Derived&>(*this);
  }
};

}  // namespace detail

/// Duration in minutes (the paper's native unit for video lengths).
struct Minutes : detail::QuantityOps<Minutes> {
  [[nodiscard]] constexpr double seconds() const noexcept { return v * 60.0; }
};

/// Data rate in Mbit/s (the paper's native unit for channel bandwidth).
struct MbitPerSec : detail::QuantityOps<MbitPerSec> {
  [[nodiscard]] constexpr double mbyte_per_sec() const noexcept {
    return v / 8.0;
  }
};

/// Data size in Mbits.
struct Mbits : detail::QuantityOps<Mbits> {
  [[nodiscard]] constexpr double mbytes() const noexcept { return v / 8.0; }
  [[nodiscard]] constexpr double gbytes() const noexcept {
    return v / 8.0 / 1024.0;
  }
};

/// rate x duration = size; the 60 converts minutes to seconds.
[[nodiscard]] constexpr Mbits operator*(MbitPerSec rate, Minutes t) noexcept {
  return Mbits{rate.v * t.seconds()};
}
[[nodiscard]] constexpr Mbits operator*(Minutes t, MbitPerSec rate) noexcept {
  return rate * t;
}

/// size / rate = duration.
[[nodiscard]] constexpr Minutes operator/(Mbits size, MbitPerSec rate) noexcept {
  return Minutes{size.v / rate.v / 60.0};
}

/// User-defined literals so parameters read like the paper:
/// `120.0_min`, `1.5_mbps`.
inline namespace literals {
constexpr Minutes operator""_min(long double v) {
  return Minutes{static_cast<double>(v)};
}
constexpr Minutes operator""_min(unsigned long long v) {
  return Minutes{static_cast<double>(v)};
}
constexpr MbitPerSec operator""_mbps(long double v) {
  return MbitPerSec{static_cast<double>(v)};
}
constexpr MbitPerSec operator""_mbps(unsigned long long v) {
  return MbitPerSec{static_cast<double>(v)};
}
constexpr Mbits operator""_mbit(long double v) {
  return Mbits{static_cast<double>(v)};
}
constexpr Mbits operator""_mbit(unsigned long long v) {
  return Mbits{static_cast<double>(v)};
}
}  // namespace literals

/// Human-readable formatting (used by reports): "12.0 min", "1.50 Mb/s",
/// "33.8 MB".
[[nodiscard]] std::string to_string(Minutes t);
[[nodiscard]] std::string to_string(MbitPerSec r);
[[nodiscard]] std::string to_string(Mbits s);

}  // namespace vodbcast::core
