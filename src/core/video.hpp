// Video and server models shared by every scheme.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/units.hpp"

namespace vodbcast::core {

/// Identifies a video within a catalog.
using VideoId = std::uint32_t;

/// One video title: length and (constant-bit-rate) display rate.
/// The paper's running example is a 120-minute MPEG-1 movie at 1.5 Mb/s.
struct VideoParams {
  Minutes duration{120.0};
  MbitPerSec display_rate{1.5};

  /// Total size of the video file.
  [[nodiscard]] constexpr Mbits size() const noexcept {
    return display_rate * duration;
  }
};

/// The server-side design inputs every broadcasting scheme consumes:
///   B  - total network-I/O bandwidth dedicated to periodic broadcast
///   M  - number of (equally popular) videos being broadcast
///   video - the common length/rate of those videos
struct ServerConfig {
  MbitPerSec bandwidth{600.0};
  int num_videos = 10;
  VideoParams video{};

  /// Bandwidth share available per video (B / M).
  [[nodiscard]] constexpr MbitPerSec per_video_bandwidth() const noexcept {
    return MbitPerSec{bandwidth.v / num_videos};
  }
};

/// A named catalog entry with a popularity weight; used by the workload and
/// hybrid-allocation substrates.
struct CatalogEntry {
  VideoId id = 0;
  std::string title;
  VideoParams params{};
  double popularity = 0.0;  ///< normalized access probability
};

/// An immutable set of titles ordered by decreasing popularity.
class VideoCatalog {
 public:
  VideoCatalog() = default;
  explicit VideoCatalog(std::vector<CatalogEntry> entries);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] const CatalogEntry& at(std::size_t rank) const;
  [[nodiscard]] const std::vector<CatalogEntry>& entries() const noexcept {
    return entries_;
  }

  /// Total popularity mass of the first `n` titles.
  [[nodiscard]] double popularity_mass(std::size_t n) const;

  /// Builds a catalog of `n` synthetic titles whose popularities follow the
  /// given (already normalized) distribution.
  [[nodiscard]] static VideoCatalog synthetic(
      std::size_t n, const std::vector<double>& popularity,
      VideoParams params);

 private:
  std::vector<CatalogEntry> entries_;
};

}  // namespace vodbcast::core
