#include "core/video.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace vodbcast::core {

VideoCatalog::VideoCatalog(std::vector<CatalogEntry> entries)
    : entries_(std::move(entries)) {
  VB_EXPECTS_MSG(
      std::is_sorted(entries_.begin(), entries_.end(),
                     [](const CatalogEntry& a, const CatalogEntry& b) {
                       return a.popularity > b.popularity;
                     }),
      "catalog must be ordered by decreasing popularity");
}

const CatalogEntry& VideoCatalog::at(std::size_t rank) const {
  VB_EXPECTS(rank < entries_.size());
  return entries_[rank];
}

double VideoCatalog::popularity_mass(std::size_t n) const {
  VB_EXPECTS(n <= entries_.size());
  double mass = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mass += entries_[i].popularity;
  }
  return mass;
}

VideoCatalog VideoCatalog::synthetic(std::size_t n,
                                     const std::vector<double>& popularity,
                                     VideoParams params) {
  VB_EXPECTS(popularity.size() == n);
  std::vector<CatalogEntry> entries;
  entries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    entries.push_back(CatalogEntry{
        .id = static_cast<VideoId>(i),
        .title = "video-" + std::to_string(i),
        .params = params,
        .popularity = popularity[i],
    });
  }
  return VideoCatalog(std::move(entries));
}

}  // namespace vodbcast::core
