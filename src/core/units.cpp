#include "core/units.hpp"

#include <cstdio>

namespace vodbcast::core {

namespace {
std::string format(double v, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4g %s", v, suffix);
  return buf;
}
}  // namespace

std::string to_string(Minutes t) { return format(t.v, "min"); }

std::string to_string(MbitPerSec r) { return format(r.v, "Mb/s"); }

std::string to_string(Mbits s) { return format(s.mbytes(), "MB"); }

}  // namespace vodbcast::core
