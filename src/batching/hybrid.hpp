// Hybrid server: periodic broadcast for the hot titles, scheduled multicast
// for the tail (paper Section 1: "a hybrid of the two techniques offered the
// best performance").
//
// Given a catalog with Zipf popularity and a total bandwidth budget, the
// allocator dedicates enough channels to broadcast the hottest `hot_titles`
// videos with an SB scheme and hands the remaining channels to a batching
// policy for the tail. The report combines both sides' latency weighted by
// demand.
#pragma once

#include <memory>
#include <string>

#include "batching/scheduled_multicast.hpp"
#include "core/video.hpp"
#include "schemes/skyscraper.hpp"

namespace vodbcast::batching {

struct HybridConfig {
  core::MbitPerSec total_bandwidth{600.0};
  std::size_t catalog_size = 100;
  std::size_t hot_titles = 10;          ///< broadcast via SB
  int broadcast_channels_per_video = 6; ///< K dedicated to each hot title
  std::uint64_t sb_width = 52;
  core::VideoParams video{};
  double arrivals_per_minute = 10.0;
  core::Minutes horizon{2000.0};
  core::Minutes mean_patience{-1.0};
  std::uint64_t seed = 11;
  /// Sample cap for the tail simulation's Distributions (forwarded to
  /// MulticastConfig::stats_sample_cap); 0 retains every sample exactly.
  std::size_t stats_sample_cap = 0;
  /// Optional observability attachment (not owned), forwarded to the tail's
  /// scheduled-multicast simulation; "hybrid.*" gauges record the split.
  obs::Sink* sink = nullptr;
  /// Optional time-series sampler (not owned), forwarded to the tail's
  /// scheduled-multicast simulation.
  obs::Sampler* sampler = nullptr;
};

struct HybridReport {
  std::size_t hot_titles = 0;
  double hot_demand_fraction = 0.0;   ///< popularity mass broadcast
  core::Minutes broadcast_worst_latency{0.0};
  core::MbitPerSec broadcast_bandwidth{0.0};
  int multicast_channels = 0;
  MulticastReport multicast;          ///< tail-side simulation
  /// Demand-weighted mean latency across both sides, approximating the hot
  /// side by half its worst (guaranteed) wait.
  double combined_mean_wait_minutes = 0.0;
};

/// Runs the hybrid allocation end to end.
/// Throws std::invalid_argument (naming the violated bound) when
/// hot_titles > catalog_size or when the broadcast side does not leave at
/// least one whole channel of bandwidth for the scheduled-multicast tail.
[[nodiscard]] HybridReport evaluate_hybrid(const BatchingPolicy& policy,
                                           const HybridConfig& config);

}  // namespace vodbcast::batching
