#include "batching/queue_policies.hpp"

namespace vodbcast::batching {

std::optional<core::VideoId> FcfsPolicy::pick(const WaitQueues& queues) const {
  std::optional<core::VideoId> best;
  double oldest = 0.0;
  for (std::size_t v = 0; v < queues.size(); ++v) {
    if (queues[v].empty()) {
      continue;
    }
    const double head = queues[v].front().arrival.v;
    if (!best.has_value() || head < oldest) {
      best = static_cast<core::VideoId>(v);
      oldest = head;
    }
  }
  return best;
}

std::optional<core::VideoId> MqlPolicy::pick(const WaitQueues& queues) const {
  std::optional<core::VideoId> best;
  std::size_t longest = 0;
  double oldest = 0.0;
  for (std::size_t v = 0; v < queues.size(); ++v) {
    const auto len = queues[v].size();
    if (len == 0) {
      continue;
    }
    const double head = queues[v].front().arrival.v;
    const bool better =
        !best.has_value() || len > longest ||
        (len == longest && head < oldest);
    if (better) {
      best = static_cast<core::VideoId>(v);
      longest = len;
      oldest = head;
    }
  }
  return best;
}

}  // namespace vodbcast::batching
