// Scheduled-multicast server simulation.
//
// The paper assumes "some existing scheduled multicast scheme is used to
// handle the less popular videos"; this is that substrate. A pool of
// channels serves per-video batches: when a channel frees, the batching
// policy picks a queue and the whole batch shares one stream for the video's
// full duration. Optional reneging models subscribers abandoning after an
// exponentially-distributed patience, which is what guaranteed-latency
// periodic broadcast improves on.
#pragma once

#include <memory>

#include "batching/queue_policies.hpp"
#include "obs/sampler.hpp"
#include "obs/sink.hpp"
#include "sim/stats.hpp"
#include "util/rng.hpp"
#include "workload/request.hpp"

namespace vodbcast::batching {

struct MulticastConfig {
  int channels = 10;
  core::Minutes video_length{120.0};
  core::Minutes horizon{2000.0};
  /// Mean patience before a waiting subscriber reneges; <= 0 disables
  /// reneging (everyone waits indefinitely).
  core::Minutes mean_patience{-1.0};
  std::uint64_t seed = 7;
  /// Sample cap for the report's wait/batch-size Distributions: 0 retains
  /// every sample exactly; a positive cap folds into a bounded quantile
  /// sketch past the cap (sim::Distribution::set_sample_cap).
  std::size_t stats_sample_cap = 0;
  /// Optional observability attachment (not owned): "batching.*" metrics,
  /// batch-fire / renege trace events, and event-queue instrumentation.
  obs::Sink* sink = nullptr;
  /// Optional time-series sampler (not owned). When set, the run registers
  /// "batching.queue_depth", "batching.busy_channels" and
  /// "batching.event_queue.pending" probes and advances the sampler as the
  /// event clock moves. Null costs one pointer test per event.
  obs::Sampler* sampler = nullptr;
};

struct MulticastReport {
  std::string policy;
  sim::Distribution wait_minutes;    ///< waits of served requests
  sim::Distribution batch_size;      ///< requests sharing each stream
  std::uint64_t served = 0;
  std::uint64_t reneged = 0;
  std::uint64_t streams_started = 0;
  double channel_utilization = 0.0;  ///< busy channel-minutes / capacity
};

/// Simulates the policy on a pre-generated request stream (arrival order).
[[nodiscard]] MulticastReport simulate_scheduled_multicast(
    const BatchingPolicy& policy, const std::vector<workload::Request>& requests,
    std::size_t num_videos, const MulticastConfig& config);

}  // namespace vodbcast::batching
