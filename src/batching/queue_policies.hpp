// Scheduled-multicast batching policies (paper Section 1).
//
// When a server channel frees up, the server picks one video and serves its
// whole queue of pending requests with a single multicast stream. The paper
// cites two selection policies from Dan, Sitaram & Shahabuddin:
//   FCFS - serve the video whose head-of-line request has waited longest
//   MQL  - Maximum Queue Length: serve the video with the most pending
//          requests (maximizing throughput at the cost of fairness)
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/units.hpp"
#include "core/video.hpp"

namespace vodbcast::batching {

/// A pending request in a per-video queue. `renege_at` is the instant the
/// subscriber abandons if still unserved (infinity = infinite patience).
struct PendingRequest {
  core::Minutes arrival{0.0};
  core::Minutes renege_at{1e300};
};

/// Per-video waiting queues, indexed by VideoId.
using WaitQueues = std::vector<std::vector<PendingRequest>>;

class BatchingPolicy {
 public:
  virtual ~BatchingPolicy() = default;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Chooses the video to serve next, or nullopt if every queue is empty.
  [[nodiscard]] virtual std::optional<core::VideoId> pick(
      const WaitQueues& queues) const = 0;
};

class FcfsPolicy final : public BatchingPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "FCFS"; }
  [[nodiscard]] std::optional<core::VideoId> pick(
      const WaitQueues& queues) const override;
};

class MqlPolicy final : public BatchingPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "MQL"; }
  [[nodiscard]] std::optional<core::VideoId> pick(
      const WaitQueues& queues) const override;
};

}  // namespace vodbcast::batching
