#include "batching/scheduled_multicast.hpp"

#include <algorithm>

#include "obs/log.hpp"
#include "obs/timer.hpp"
#include "sim/event_queue.hpp"
#include "util/contracts.hpp"

namespace vodbcast::batching {

namespace {

/// Drops pending requests whose patience expired before `now`.
/// `renege_by_title` (empty when unobserved) holds one pre-resolved counter
/// per video id. `span_client` numbers the abandoned sessions' spans; it is
/// only touched when a sink is attached.
std::uint64_t clean_expired(WaitQueues& queues, double now, obs::Sink* sink,
                            const std::vector<obs::Counter*>& renege_by_title,
                            std::uint64_t* span_client) {
  std::uint64_t reneged = 0;
  for (std::size_t video = 0; video < queues.size(); ++video) {
    auto& queue = queues[video];
    if (sink != nullptr) {
      // An abandoned session is all queue_wait: the span tree is the
      // session with one queue_wait child covering arrival → renege.
      for (const auto& r : queue) {
        if (r.renege_at.v >= now) {
          continue;
        }
        const auto client = ++*span_client;
        const double waited = r.renege_at.v - r.arrival.v;
        const auto session = sink->spans.record(obs::Span{
            .start_min = r.arrival.v,
            .end_min = r.renege_at.v,
            .phase = obs::SpanPhase::kSession,
            .channel = 0,
            .video = video,
            .client = client,
            .value = waited,
            .label = {},
        });
        sink->spans.record(obs::Span{
            .parent = session,
            .start_min = r.arrival.v,
            .end_min = r.renege_at.v,
            .phase = obs::SpanPhase::kQueueWait,
            .channel = 0,
            .video = video,
            .client = client,
            .value = waited,
            .label = {},
        });
      }
    }
    const auto kept = std::remove_if(
        queue.begin(), queue.end(), [now](const PendingRequest& r) {
          return r.renege_at.v < now;
        });
    const auto lost = static_cast<std::uint64_t>(queue.end() - kept);
    if (lost > 0) {
      if (!renege_by_title.empty()) {
        renege_by_title[video]->add(lost);
      }
      if (sink != nullptr) {
        sink->trace.record(obs::TraceEvent{
            .sim_time_min = now,
            .kind = obs::EventKind::kRenege,
            .channel = 0,
            .video = video,
            .client = 0,
            .value = static_cast<double>(lost),
        });
      }
    }
    reneged += lost;
    queue.erase(kept, queue.end());
  }
  return reneged;
}

std::size_t total_pending(const WaitQueues& queues) {
  std::size_t total = 0;
  for (const auto& queue : queues) {
    total += queue.size();
  }
  return total;
}

/// The per-run simulation state, bundled so event callbacks capture one
/// pointer (plus at most one Request) and stay inside the event engine's
/// inline-capture budget — the hot path then never boxes a callback.
struct MulticastSim {
  const BatchingPolicy& policy;
  const MulticastConfig& config;
  MulticastReport& report;
  WaitQueues& queues;
  sim::EventQueue& events;
  obs::ProbeScope& probes;
  util::Rng& rng;
  obs::Sink* sink;
  obs::Counter* batches_counter;
  obs::Counter* served_counter;
  obs::Counter* reneged_counter;
  obs::Gauge* depth_peak;
  obs::Histogram* dispatch_ns;
  obs::Histogram* batch_hist;
  /// Pre-resolved per-title instruments (empty when no sink): one slot per
  /// video id so the dispatch loop never does a label lookup.
  std::vector<obs::QuantileSketch*> wait_by_title;
  std::vector<obs::Counter*> renege_by_title;
  int free_channels;
  /// Client ordinal for span emission (sink-attached runs only).
  std::uint64_t next_span_client = 0;
  double busy_minutes = 0.0;
  /// Per-channel accounting under lowest-free-index assignment — the
  /// deterministic stand-in for "which physical channel carried the batch".
  std::vector<char> channel_busy;
  std::vector<double> channel_busy_minutes;

  /// Drops expired waiters and keeps the report and metrics in step.
  void clean(double now) {
    const auto expired = clean_expired(queues, now, sink, renege_by_title,
                                       &next_span_client);
    report.reneged += expired;
    if (reneged_counter != nullptr) {
      reneged_counter->add(expired);
    }
  }

  /// Serves one batch if a channel and a non-empty queue are available.
  void try_dispatch() {
    const obs::ScopedTimer timer(dispatch_ns);
    if (free_channels == 0) {
      return;
    }
    const double now = events.now();
    clean(now);
    const auto video = policy.pick(queues);
    if (!video.has_value()) {
      return;
    }
    auto& queue = queues[*video];
    VB_ASSERT(!queue.empty());
    // Lowest free channel index carries this stream (resolved before the
    // serve loop so the batch's playback spans can name their channel).
    const auto channel = static_cast<std::size_t>(
        std::find(channel_busy.begin(), channel_busy.end(), 0) -
        channel_busy.begin());
    VB_ASSERT(channel < channel_busy.size());
    obs::QuantileSketch* wait_sketch =
        wait_by_title.empty() ? nullptr : wait_by_title[*video];
    for (const auto& r : queue) {
      const double wait = now - r.arrival.v;
      report.wait_minutes.add(wait);
      if (wait_sketch != nullptr) {
        wait_sketch->observe(wait);
      }
      if (sink != nullptr) {
        // Span tree per served request: session = queue_wait then playback
        // on the assigned channel (the cross-channel edge the chrome export
        // draws as a flow arrow).
        const auto client = ++next_span_client;
        const double end = now + config.video_length.v;
        const auto session = sink->spans.record(obs::Span{
            .start_min = r.arrival.v,
            .end_min = end,
            .phase = obs::SpanPhase::kSession,
            .channel = 0,
            .video = *video,
            .client = client,
            .value = wait,
            .label = {},
        });
        sink->spans.record(obs::Span{
            .parent = session,
            .start_min = r.arrival.v,
            .end_min = now,
            .phase = obs::SpanPhase::kQueueWait,
            .channel = 0,
            .video = *video,
            .client = client,
            .value = wait,
            .label = {},
        });
        sink->spans.record(obs::Span{
            .parent = session,
            .start_min = now,
            .end_min = end,
            .phase = obs::SpanPhase::kPlayback,
            .channel = static_cast<std::int32_t>(channel),
            .video = *video,
            .client = client,
            .value = config.video_length.v,
            .label = {},
        });
      }
    }
    const auto batch = queue.size();
    report.batch_size.add(static_cast<double>(batch));
    report.served += batch;
    queue.clear();
    ++report.streams_started;
    --free_channels;
    busy_minutes += config.video_length.v;
    channel_busy[channel] = 1;
    channel_busy_minutes[channel] += config.video_length.v;
    if (sink != nullptr) {
      batches_counter->add();
      served_counter->add(batch);
      batch_hist->observe(static_cast<double>(batch));
      sink->trace.record(obs::TraceEvent{
          .sim_time_min = now,
          .kind = obs::EventKind::kBatchFire,
          .channel = config.channels - free_channels,
          .video = *video,
          .client = 0,
          .value = static_cast<double>(batch),
      });
    }
    events.schedule(now + config.video_length.v, [this, channel] {
      ++free_channels;
      channel_busy[channel] = 0;
      try_dispatch();
    });
  }

  void arrival(const workload::Request& request) {
    probes.advance(request.arrival.v);
    PendingRequest pending{.arrival = request.arrival,
                           .renege_at = core::Minutes{1e300}};
    if (config.mean_patience.v > 0.0) {
      pending.renege_at =
          request.arrival +
          core::Minutes{rng.next_exponential(1.0 / config.mean_patience.v)};
    }
    queues[request.video].push_back(pending);
    if (depth_peak != nullptr) {
      depth_peak->max_of(static_cast<double>(total_pending(queues)));
    }
    try_dispatch();
  }
};

}  // namespace

MulticastReport simulate_scheduled_multicast(
    const BatchingPolicy& policy,
    const std::vector<workload::Request>& requests, std::size_t num_videos,
    const MulticastConfig& config) {
  VB_EXPECTS(config.channels >= 1);
  VB_EXPECTS(config.video_length.v > 0.0);
  VB_EXPECTS(num_videos >= 1);

  MulticastReport report;
  report.policy = policy.name();
  report.wait_minutes.set_sample_cap(config.stats_sample_cap);
  report.batch_size.set_sample_cap(config.stats_sample_cap);

  obs::Sink* sink = config.sink;
  obs::Counter* batches_counter = nullptr;
  obs::Counter* served_counter = nullptr;
  obs::Counter* reneged_counter = nullptr;
  obs::Gauge* depth_peak = nullptr;
  obs::Histogram* dispatch_ns = nullptr;
  obs::Histogram* batch_hist = nullptr;
  std::vector<obs::QuantileSketch*> wait_by_title;
  std::vector<obs::Counter*> renege_by_title;
  if (sink != nullptr) {
    batches_counter = &sink->metrics.counter("batching.streams_started");
    served_counter = &sink->metrics.counter("batching.served");
    reneged_counter = &sink->metrics.counter("batching.reneged");
    depth_peak = &sink->metrics.gauge("batching.queue_depth_peak");
    dispatch_ns = &sink->metrics.histogram("batching.dispatch_ns",
                                           obs::default_time_bounds_ns());
    batch_hist = &sink->metrics.histogram(
        "batching.batch_size", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0});
    // Per-title series resolved once; the dispatch/clean hot paths index by
    // video id. Sized to the catalog so no title folds into overflow.
    auto& wait_family = sink->metrics.sketch_family(
        "batching.client.wait", {"title"}, {}, num_videos + 1);
    auto& renege_family = sink->metrics.counter_family(
        "batching.client.reneged", {"title"}, num_videos + 1);
    wait_by_title.resize(num_videos);
    renege_by_title.resize(num_videos);
    for (std::size_t video = 0; video < num_videos; ++video) {
      wait_by_title[video] = &wait_family.with_ids({video});
      renege_by_title[video] = &renege_family.with_ids({video});
    }
  }

  WaitQueues queues(num_videos);
  util::Rng rng(config.seed);

  sim::EventQueue events;
  events.attach_sink(sink);

  // Time-series probes over the simulation locals; the ProbeScope
  // unregisters them before the locals die. Advanced at each arrival (the
  // only points where the clock moves past sampler ticks in bulk).
  obs::ProbeScope probes(config.sampler);

  MulticastSim state{
      .policy = policy,
      .config = config,
      .report = report,
      .queues = queues,
      .events = events,
      .probes = probes,
      .rng = rng,
      .sink = sink,
      .batches_counter = batches_counter,
      .served_counter = served_counter,
      .reneged_counter = reneged_counter,
      .depth_peak = depth_peak,
      .dispatch_ns = dispatch_ns,
      .batch_hist = batch_hist,
      .wait_by_title = std::move(wait_by_title),
      .renege_by_title = std::move(renege_by_title),
      .free_channels = config.channels,
      .channel_busy =
          std::vector<char>(static_cast<std::size_t>(config.channels), 0),
      .channel_busy_minutes = std::vector<double>(
          static_cast<std::size_t>(config.channels), 0.0),
  };

  probes.add("batching.queue_depth", [&queues] {
    return static_cast<double>(total_pending(queues));
  });
  probes.add("batching.busy_channels", [&config, &state] {
    return static_cast<double>(config.channels - state.free_channels);
  });
  probes.add("batching.event_queue.pending",
             [&events] { return static_cast<double>(events.pending()); });

  for (const auto& request : requests) {
    VB_EXPECTS(request.video < num_videos);
    // 24-byte capture: stays in the engine's inline slot, no boxing.
    events.schedule(request.arrival.v,
                    [sim = &state, request] { sim->arrival(request); });
  }

  events.run_until(config.horizon.v);
  probes.advance(config.horizon.v);

  // Anything still queued at the horizon: expired entries reneged, the rest
  // simply remain unserved (neither served nor reneged).
  state.clean(config.horizon.v);
  const auto unserved = total_pending(queues);
  if (unserved > 0) {
    obs::logf(obs::LogLevel::kWarn,
              "scheduled_multicast: %zu requests still queued at horizon "
              "%.1f min (policy=%s)",
              unserved, config.horizon.v, report.policy.c_str());
  }

  report.channel_utilization =
      state.busy_minutes / (config.channels * config.horizon.v);
  if (sink != nullptr) {
    auto& util_family = sink->metrics.gauge_family(
        "batching.channel.utilization", {"channel"},
        static_cast<std::size_t>(config.channels) + 1);
    for (std::size_t channel = 0; channel < state.channel_busy_minutes.size();
         ++channel) {
      util_family.with_ids({channel}).max_of(
          state.channel_busy_minutes[channel] / config.horizon.v);
    }
  }
  obs::logf(obs::LogLevel::kDebug,
            "scheduled_multicast: policy=%s served=%llu reneged=%llu "
            "streams=%llu utilization=%.3f",
            report.policy.c_str(),
            static_cast<unsigned long long>(report.served),
            static_cast<unsigned long long>(report.reneged),
            static_cast<unsigned long long>(report.streams_started),
            report.channel_utilization);
  return report;
}

}  // namespace vodbcast::batching
