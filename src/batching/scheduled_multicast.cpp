#include "batching/scheduled_multicast.hpp"

#include <algorithm>

#include "sim/event_queue.hpp"
#include "util/contracts.hpp"

namespace vodbcast::batching {

namespace {

/// Drops pending requests whose patience expired before `now`.
std::uint64_t clean_expired(WaitQueues& queues, double now) {
  std::uint64_t reneged = 0;
  for (auto& queue : queues) {
    const auto kept = std::remove_if(
        queue.begin(), queue.end(), [now](const PendingRequest& r) {
          return r.renege_at.v < now;
        });
    reneged += static_cast<std::uint64_t>(queue.end() - kept);
    queue.erase(kept, queue.end());
  }
  return reneged;
}

}  // namespace

MulticastReport simulate_scheduled_multicast(
    const BatchingPolicy& policy,
    const std::vector<workload::Request>& requests, std::size_t num_videos,
    const MulticastConfig& config) {
  VB_EXPECTS(config.channels >= 1);
  VB_EXPECTS(config.video_length.v > 0.0);
  VB_EXPECTS(num_videos >= 1);

  MulticastReport report;
  report.policy = policy.name();

  WaitQueues queues(num_videos);
  int free_channels = config.channels;
  double busy_minutes = 0.0;
  util::Rng rng(config.seed);

  sim::EventQueue events;

  // Serves one batch if a channel and a non-empty queue are available.
  const auto try_dispatch = [&](auto&& self) -> void {
    if (free_channels == 0) {
      return;
    }
    const double now = events.now();
    report.reneged += clean_expired(queues, now);
    const auto video = policy.pick(queues);
    if (!video.has_value()) {
      return;
    }
    auto& queue = queues[*video];
    VB_ASSERT(!queue.empty());
    for (const auto& r : queue) {
      report.wait_minutes.add(now - r.arrival.v);
    }
    report.batch_size.add(static_cast<double>(queue.size()));
    report.served += queue.size();
    queue.clear();
    ++report.streams_started;
    --free_channels;
    busy_minutes += config.video_length.v;
    events.schedule(now + config.video_length.v, [&, self]() {
      ++free_channels;
      self(self);
    });
  };

  for (const auto& request : requests) {
    VB_EXPECTS(request.video < num_videos);
    events.schedule(request.arrival.v, [&, request]() {
      PendingRequest pending{.arrival = request.arrival,
                             .renege_at = core::Minutes{1e300}};
      if (config.mean_patience.v > 0.0) {
        pending.renege_at =
            request.arrival +
            core::Minutes{rng.next_exponential(1.0 / config.mean_patience.v)};
      }
      queues[request.video].push_back(pending);
      try_dispatch(try_dispatch);
    });
  }

  events.run_until(config.horizon.v);

  // Anything still queued at the horizon: expired entries reneged, the rest
  // simply remain unserved (neither served nor reneged).
  report.reneged += clean_expired(queues, config.horizon.v);

  report.channel_utilization =
      busy_minutes / (config.channels * config.horizon.v);
  return report;
}

}  // namespace vodbcast::batching
