#include "batching/hybrid.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "obs/log.hpp"
#include "util/contracts.hpp"
#include "util/math.hpp"
#include "workload/request.hpp"
#include "workload/zipf.hpp"

namespace vodbcast::batching {

HybridReport evaluate_hybrid(const BatchingPolicy& policy,
                             const HybridConfig& config) {
  VB_EXPECTS(config.hot_titles >= 1);
  VB_EXPECTS(config.broadcast_channels_per_video >= 1);
  // Caller-facing input validation (not programming-error contracts): these
  // bounds depend on runtime configuration, so violations throw
  // std::invalid_argument carrying the violated bound.
  if (config.hot_titles > config.catalog_size) {
    throw std::invalid_argument(
        "evaluate_hybrid: hot_titles (" + std::to_string(config.hot_titles) +
        ") exceeds catalog_size (" + std::to_string(config.catalog_size) +
        "); the hot set must be a subset of the catalog");
  }

  const double b = config.video.display_rate.v;
  const double broadcast_bw = b * config.broadcast_channels_per_video *
                              static_cast<double>(config.hot_titles);
  const double remaining_bw = config.total_bandwidth.v - broadcast_bw;
  const int multicast_channels =
      static_cast<int>(util::robust_floor(remaining_bw / b));
  if (multicast_channels < 1) {
    throw std::invalid_argument(
        "evaluate_hybrid: broadcast side needs " +
        std::to_string(broadcast_bw) + " Mb/s of the " +
        std::to_string(config.total_bandwidth.v) +
        " Mb/s budget, leaving no whole " + std::to_string(b) +
        " Mb/s channel for the scheduled-multicast tail (>= 1 required)");
  }

  // Broadcast side: SB over the hot titles with K channels each.
  const schemes::SkyscraperScheme sb(config.sb_width);
  const schemes::DesignInput sb_input{
      .server_bandwidth = core::MbitPerSec{broadcast_bw},
      .num_videos = static_cast<int>(config.hot_titles),
      .video = config.video,
  };
  const auto evaluation = sb.evaluate(sb_input);
  VB_EXPECTS(evaluation.has_value());

  // Workload: split one Zipf stream into hot (absorbed by broadcast) and
  // cold (queued for multicast) requests.
  const auto popularity = workload::zipf_probabilities(config.catalog_size);
  workload::RequestGenerator generator(popularity, config.arrivals_per_minute,
                                       util::Rng(config.seed));
  const auto all_requests = generator.generate_until(config.horizon);

  std::vector<workload::Request> cold;
  std::uint64_t hot_count = 0;
  for (const auto& r : all_requests) {
    if (r.video < config.hot_titles) {
      ++hot_count;
    } else {
      cold.push_back(workload::Request{
          .arrival = r.arrival,
          .video = r.video - static_cast<core::VideoId>(config.hot_titles),
      });
    }
  }

  obs::logf(obs::LogLevel::kDebug,
            "hybrid: %zu hot titles at %.1f Mb/s broadcast, %d tail channels",
            config.hot_titles, broadcast_bw, multicast_channels);
  if (config.sink != nullptr) {
    config.sink->metrics.gauge("hybrid.broadcast_bandwidth_mbps")
        .set(broadcast_bw);
    config.sink->metrics.gauge("hybrid.multicast_channels")
        .set(static_cast<double>(multicast_channels));
    config.sink->metrics.counter("hybrid.hot_requests").add(hot_count);
    config.sink->metrics.counter("hybrid.cold_requests").add(cold.size());
  }

  const MulticastConfig mc{
      .channels = multicast_channels,
      .video_length = config.video.duration,
      .horizon = config.horizon,
      .mean_patience = config.mean_patience,
      .seed = config.seed + 1,
      .stats_sample_cap = config.stats_sample_cap,
      .sink = config.sink,
      .sampler = config.sampler,
  };
  HybridReport report;
  if (config.catalog_size > config.hot_titles) {
    report.multicast = simulate_scheduled_multicast(
        policy, cold, config.catalog_size - config.hot_titles, mc);
  }
  // else: the whole catalog is broadcast; the tail channel idles and the
  // default (empty) multicast report stands.

  report.hot_titles = config.hot_titles;
  double mass = 0.0;
  for (std::size_t i = 0; i < config.hot_titles; ++i) {
    mass += popularity[i];
  }
  report.hot_demand_fraction = mass;
  report.broadcast_worst_latency = evaluation->metrics.access_latency;
  report.broadcast_bandwidth = core::MbitPerSec{broadcast_bw};
  report.multicast_channels = multicast_channels;

  // Hot requests wait uniformly within the broadcast period -> half the
  // worst latency on average; cold requests use the simulated mean.
  const double hot_mean = evaluation->metrics.access_latency.v / 2.0;
  const double cold_mean = report.multicast.wait_minutes.empty()
                               ? 0.0
                               : report.multicast.wait_minutes.mean();
  const double total_requests =
      static_cast<double>(hot_count + report.multicast.served);
  report.combined_mean_wait_minutes =
      total_requests == 0.0
          ? 0.0
          : (hot_mean * static_cast<double>(hot_count) +
             cold_mean * static_cast<double>(report.multicast.served)) /
                total_requests;
  return report;
}

}  // namespace vodbcast::batching
