#!/usr/bin/env bash
# Full verification chain: tier-1 build+tests, the ASan/UBSan sweep, and a
# quick pass of the bench suite to prove every binary still writes a valid
# BENCH_*.json that bench_diff can read back.
#
#   scripts/verify_all.sh [--skip-sanitize]
set -euo pipefail
cd "$(dirname "$0")/.."

skip_sanitize=0
for arg in "$@"; do
  case "$arg" in
    --skip-sanitize) skip_sanitize=1 ;;
    *)
      echo "usage: $0 [--skip-sanitize]" >&2
      exit 2
      ;;
  esac
done

echo "== tier-1: build + ctest =="
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure

if [[ $skip_sanitize -eq 0 ]]; then
  echo "== sanitize sweep =="
  scripts/verify_sanitize.sh
fi

echo "== bench suite (quick) + self-diff =="
suite_dir=$(mktemp -d)
trap 'rm -rf "$suite_dir"' EXIT
scripts/run_bench_suite.sh --quick --out "$suite_dir"
build/tools/bench_diff "$suite_dir" "$suite_dir"

echo "verify_all: OK"
