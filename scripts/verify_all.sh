#!/usr/bin/env bash
# Full verification chain: tier-1 build+tests, the ASan/UBSan sweep, an
# OpenMetrics exposition self-check (simulate --metrics-format openmetrics
# must lint clean under tools/metrics_check, including the per-title wait
# sketch vs clients-served invariant), a span capture self-check (a seeded
# simulate --spans-out run must reconcile against its own --metrics-out dump
# under tools/trace_analyze --check), a fault-injection self-check (a
# seeded simulate --fault-plan trace must satisfy the hit = repair +
# degraded contract under tools/trace_check --faults), a metro federation
# self-check (a seeded 4-region vodbcast metro run must conserve arrivals
# across served-local/rerouted/rejected under tools/metrics_check and
# reproduce its stdout and metrics byte for byte at --threads 4), a quick
# pass of the bench suite to
# prove every binary still writes a valid BENCH_*.json that bench_diff can
# read back, and (opt-in) the mechanical perf gate against the committed
# trajectory.
#
#   scripts/verify_all.sh [--skip-sanitize] [--perf-gate]
#                         [--perf-threshold FRAC]
#
#   --perf-gate   run the full bench suite twice, interleaved with nothing
#                 in between (A then B on the same build), diff A/B to
#                 measure the machine's noise floor, then gate the A run
#                 against the committed root BENCH_*.json via bench_diff.
#                 Exits non-zero on any wall-p50 regression beyond the
#                 threshold — the trajectory gate, made mechanical.
#   --perf-threshold FRAC  relative band handed to bench_diff (default
#                 0.05; raise on noisy machines).
set -euo pipefail
cd "$(dirname "$0")/.."

skip_sanitize=0
perf_gate=0
perf_threshold=0.05
while [[ $# -gt 0 ]]; do
  case "$1" in
    --skip-sanitize) skip_sanitize=1; shift ;;
    --perf-gate) perf_gate=1; shift ;;
    --perf-threshold) perf_threshold=$2; shift 2 ;;
    --perf-threshold=*) perf_threshold=${1#--perf-threshold=}; shift ;;
    *)
      echo "usage: $0 [--skip-sanitize] [--perf-gate]" \
           "[--perf-threshold FRAC]" >&2
      exit 2
      ;;
  esac
done

echo "== tier-1: build + ctest =="
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure

if [[ $skip_sanitize -eq 0 ]]; then
  echo "== sanitize sweep =="
  scripts/verify_sanitize.sh
fi

echo "== openmetrics exposition self-check =="
om_dir=$(mktemp -d)
trap 'rm -rf "$om_dir"' EXIT
build/tools/vodbcast simulate --scheme SB:W=52 --bandwidth 300 \
  --horizon 120 --arrivals 4 --seed 42 \
  --metrics-format openmetrics --metrics-out "$om_dir/metrics.txt"
build/tools/metrics_check "$om_dir/metrics.txt" \
  'sum(sb_client_wait_count{title=*}) == sim_clients_served_total' \
  'sim_tune_wait_sketch_min_count == sim_clients_served_total' \
  --verbose

echo "== metro-scale hot-path self-check =="
# A >=100k-client campaign with the phase-keyed plan cache and streaming
# (sample-capped) wait statistics both on. Two invariants: every lookup is
# accounted (hits + misses == clients served), and turning the cache off
# changes nothing in the report — byte-identical stdout, so the wait
# distribution, client count, and buffer peak all match exactly.
metro_args=(--scheme SB:W=52 --bandwidth 600 --videos 20
            --horizon 600 --arrivals 200 --seed 7 --stats-cap 4096)
build/tools/vodbcast simulate "${metro_args[@]}" --plan-cache 1 \
  --metrics-format openmetrics --metrics-out "$om_dir/metro.txt" \
  > "$om_dir/metro_cache_on.txt"
build/tools/metrics_check "$om_dir/metro.txt" \
  'sim_plan_cache_hits_total + sim_plan_cache_misses_total == sim_clients_served_total' \
  --verbose
build/tools/vodbcast simulate "${metro_args[@]}" --plan-cache 0 \
  > "$om_dir/metro_cache_off.txt"
diff "$om_dir/metro_cache_on.txt" "$om_dir/metro_cache_off.txt"
grep -Eq 'clients served: [0-9]{6,}' "$om_dir/metro_cache_on.txt" || {
  echo "metro smoke: expected >=100k clients served" >&2
  exit 1
}

echo "== span capture self-check =="
build/tools/vodbcast simulate --scheme SB:W=52 --bandwidth 300 \
  --horizon 120 --arrivals 4 --seed 42 \
  --metrics-out "$om_dir/metrics.json" \
  --spans-out "$om_dir/spans.jsonl" --spans-limit 131072
build/tools/trace_analyze "$om_dir/spans.jsonl" \
  --check --metrics "$om_dir/metrics.json"

echo "== fault-injection self-check =="
build/tools/vodbcast simulate --scheme SB:W=12 --bandwidth 300 \
  --horizon 240 --arrivals 4 --seed 42 \
  --fault-plan outages=2,bursts=2,stalls=1,restart=1 --fault-seed 7 \
  --trace-out "$om_dir/faults.jsonl" --trace-limit 262144
build/tools/trace_check "$om_dir/faults.jsonl" --faults

echo "== metro federation self-check =="
# A seeded 4-region federation. Every arrival must be accounted for by
# exactly one of the three admission outcomes (the router's conservation
# law), and the slot/merge contract must hold end to end: the --threads 4
# run reproduces the serial stdout and metrics dump byte for byte.
fed_args=(--regions 40,30,20,10 --channels 120 --horizon 120 --seed 7
          --replicate-top 8)
build/tools/vodbcast metro "${fed_args[@]}" \
  --metrics-format openmetrics --metrics-out "$om_dir/fed.txt" \
  > "$om_dir/fed_serial.txt"
build/tools/metrics_check "$om_dir/fed.txt" \
  'sum(metro_served_local_total{region=*}) + sum(metro_rerouted_total{region=*}) + sum(metro_rejected_total{region=*}) == metro_arrivals_total' \
  'sum(metro_region_arrivals_total{region=*}) == metro_arrivals_total' \
  --verbose
build/tools/vodbcast metro "${fed_args[@]}" --threads 4 \
  --metrics-format openmetrics --metrics-out "$om_dir/fed_t4.txt" \
  > "$om_dir/fed_pooled.txt"
diff "$om_dir/fed_serial.txt" "$om_dir/fed_pooled.txt"
diff "$om_dir/fed.txt" "$om_dir/fed_t4.txt"
# One region dark: the federation must keep the conservation law while
# rerouting the survivors' share of the dark head end's broadcast demand.
build/tools/vodbcast metro "${fed_args[@]}" --dark 0 \
  --metrics-format openmetrics --metrics-out "$om_dir/fed_dark.txt" \
  > /dev/null
build/tools/metrics_check "$om_dir/fed_dark.txt" \
  'sum(metro_served_local_total{region=*}) + sum(metro_rerouted_total{region=*}) + sum(metro_rejected_total{region=*}) == metro_arrivals_total' \
  --verbose

echo "== bench suite (quick) + self-diff =="
suite_dir=$(mktemp -d)
trap 'rm -rf "$om_dir" "$suite_dir"' EXIT
scripts/run_bench_suite.sh --quick --out "$suite_dir"
build/tools/bench_diff "$suite_dir" "$suite_dir"

if [[ $perf_gate -eq 1 ]]; then
  echo "== perf gate: committed trajectory vs fresh A/B pair =="
  run_a="$suite_dir/a"
  run_b="$suite_dir/b"
  scripts/run_bench_suite.sh --out "$run_a"
  scripts/run_bench_suite.sh --out "$run_b"
  echo "-- noise floor (A vs B, same build, informational) --"
  build/tools/bench_diff "$run_a" "$run_b" --threshold "$perf_threshold" || \
    echo "perf gate: WARNING — machine noise exceeds the threshold;" \
         "the gate below may be unreliable"
  echo "-- gate (committed root vs fresh run) --"
  build/tools/bench_diff . "$run_a" --threshold "$perf_threshold"
fi

echo "verify_all: OK"
