#!/usr/bin/env bash
# Runs every bench binary and collects one machine-readable BENCH_<name>.json
# per binary (schema vodbcast-bench-v1, see docs/OBSERVABILITY.md).
#
#   scripts/run_bench_suite.sh [--out DIR] [--quick] [--build-dir DIR]
#                              [--threads N]
#
#   --out DIR      directory the BENCH_*.json land in (default: the repo
#                  root, refreshing the committed perf trajectory)
#   --quick        smoke mode: 1 rep, no warmup, minimal gbench min-time.
#                  Checks the pipeline, not the numbers.
#   --build-dir D  build tree holding the bench binaries (default: build)
#   --threads N    TaskPool workers handed to pool-aware bench cases
#                  (default 1, i.e. serial; results are identical at any N)
#
# Typical A/B flow:
#   git checkout main   && scripts/run_bench_suite.sh --out /tmp/base
#   git checkout mywork && scripts/run_bench_suite.sh --out /tmp/cand
#   build/tools/bench_diff /tmp/base /tmp/cand
set -euo pipefail
cd "$(dirname "$0")/.."

out_dir=.
build_dir=build
quick=0
threads=1
while [[ $# -gt 0 ]]; do
  case "$1" in
    --out) out_dir=$2; shift 2 ;;
    --out=*) out_dir=${1#--out=}; shift ;;
    --build-dir) build_dir=$2; shift 2 ;;
    --build-dir=*) build_dir=${1#--build-dir=}; shift ;;
    --threads) threads=$2; shift 2 ;;
    --threads=*) threads=${1#--threads=}; shift ;;
    --quick) quick=1; shift ;;
    *)
      echo "usage: $0 [--out DIR] [--quick] [--build-dir DIR] [--threads N]" >&2
      exit 2
      ;;
  esac
done

cmake --build "$build_dir" -j "$(nproc)" >/dev/null
mkdir -p "$out_dir"

export VODBCAST_BENCH_OUT="$out_dir"
export VODBCAST_BENCH_THREADS="$threads"
gbench_args=()
if [[ $quick -eq 1 ]]; then
  export VODBCAST_BENCH_QUICK=1
  gbench_args+=(--benchmark_min_time=0.001)
fi

ran=0
for bin in "$build_dir"/bench/*; do
  [[ -f $bin && -x $bin ]] || continue
  name=$(basename "$bin")
  extra=()
  if [[ $name == micro_* && ${#gbench_args[@]} -gt 0 ]]; then
    extra=("${gbench_args[@]}")
  fi
  start=$(date +%s%N)
  "$bin" "${extra[@]}" >/dev/null
  elapsed_ms=$(( ($(date +%s%N) - start) / 1000000 ))
  if [[ ! -s "$out_dir/BENCH_$name.json" ]]; then
    echo "FAIL  $name: no BENCH_$name.json written" >&2
    exit 1
  fi
  printf 'ok    %-24s %6d ms\n' "$name" "$elapsed_ms"
  ran=$((ran + 1))
done

if [[ $ran -eq 0 ]]; then
  echo "FAIL  no bench binaries found under $build_dir/bench" >&2
  exit 1
fi
echo "bench suite: $ran result file(s) in $out_dir"
