#!/usr/bin/env bash
# ASan+UBSan build-and-test sweep for the observability subsystem and the
# simulator it instruments. Uses a separate build tree (build-asan) so the
# regular tier-1 build stays untouched.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build-asan -S . -DVODBCAST_SANITIZE=ON
cmake --build build-asan -j "$(nproc)" \
  --target test_obs_registry test_obs_trace test_obs_sampler \
  test_util_json test_bench_harness test_simulator

./build-asan/tests/test_obs_registry
./build-asan/tests/test_obs_trace
./build-asan/tests/test_obs_sampler
./build-asan/tests/test_util_json
./build-asan/tests/test_bench_harness
./build-asan/tests/test_simulator

echo "sanitize verify: OK"
