#!/usr/bin/env bash
# Sanitizer build-and-test sweep, two passes in separate build trees so the
# regular tier-1 build stays untouched:
#   build-asan  ASan+UBSan over the observability subsystem, simulator,
#               event-engine slab allocator, batching server, net
#               reassembly/loss paths, the fault-injection/recovery layer,
#               the adaptive control plane and the metro federation;
#   build-tsan  TSan over the TaskPool and its parallel adopters, including
#               simulate_replicated, simulate_adaptive_replicated and
#               simulate_federation runs (the data races serial ctest
#               cannot see).
#
#   scripts/verify_sanitize.sh [all|asan|thread]   (default: all)
set -euo pipefail
cd "$(dirname "$0")/.."

mode=${1:-all}
case "$mode" in
  all|asan|thread) ;;
  *)
    echo "usage: $0 [all|asan|thread]" >&2
    exit 2
    ;;
esac

if [[ $mode == all || $mode == asan ]]; then
  cmake -B build-asan -S . -DVODBCAST_SANITIZE=ON
  cmake --build build-asan -j "$(nproc)" \
    --target test_obs_registry test_obs_trace test_obs_span \
    test_obs_sampler test_obs_family test_obs_sketch test_obs_openmetrics \
    test_util_json test_bench_harness test_simulator test_task_pool \
    test_parallel test_event_queue test_batching test_net test_ctrl \
    test_fault test_metro test_plan_cache test_stats

  ./build-asan/tests/test_obs_registry
  ./build-asan/tests/test_obs_trace
  ./build-asan/tests/test_obs_span
  ./build-asan/tests/test_obs_sampler
  ./build-asan/tests/test_obs_family
  ./build-asan/tests/test_obs_sketch
  ./build-asan/tests/test_obs_openmetrics
  ./build-asan/tests/test_util_json
  ./build-asan/tests/test_bench_harness
  ./build-asan/tests/test_simulator
  ./build-asan/tests/test_task_pool
  ./build-asan/tests/test_parallel
  ./build-asan/tests/test_event_queue
  ./build-asan/tests/test_batching
  ./build-asan/tests/test_net
  ./build-asan/tests/test_ctrl
  ./build-asan/tests/test_fault
  ./build-asan/tests/test_metro
  ./build-asan/tests/test_plan_cache
  ./build-asan/tests/test_stats
fi

if [[ $mode == all || $mode == thread ]]; then
  cmake -B build-tsan -S . -DVODBCAST_SANITIZE=thread
  cmake --build build-tsan -j "$(nproc)" \
    --target test_task_pool test_parallel test_simulator test_ctrl \
    test_metro

  ./build-tsan/tests/test_task_pool
  ./build-tsan/tests/test_parallel
  ./build-tsan/tests/test_simulator
  ./build-tsan/tests/test_ctrl
  ./build-tsan/tests/test_metro
fi

echo "sanitize verify ($mode): OK"
