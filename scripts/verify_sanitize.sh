#!/usr/bin/env bash
# Sanitizer build-and-test sweep, two passes in separate build trees so the
# regular tier-1 build stays untouched:
#   build-asan  ASan+UBSan over the observability subsystem + simulator;
#   build-tsan  TSan over the TaskPool and its parallel adopters (the data
#               races serial ctest cannot see).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build-asan -S . -DVODBCAST_SANITIZE=ON
cmake --build build-asan -j "$(nproc)" \
  --target test_obs_registry test_obs_trace test_obs_sampler \
  test_util_json test_bench_harness test_simulator test_task_pool \
  test_parallel

./build-asan/tests/test_obs_registry
./build-asan/tests/test_obs_trace
./build-asan/tests/test_obs_sampler
./build-asan/tests/test_util_json
./build-asan/tests/test_bench_harness
./build-asan/tests/test_simulator
./build-asan/tests/test_task_pool
./build-asan/tests/test_parallel

cmake -B build-tsan -S . -DVODBCAST_SANITIZE=thread
cmake --build build-tsan -j "$(nproc)" \
  --target test_task_pool test_parallel

./build-tsan/tests/test_task_pool
./build-tsan/tests/test_parallel

echo "sanitize verify: OK"
