// VCR interactivity on broadcast channels: a subscriber starts a movie,
// pauses for a coffee, and the example compares the two resumption
// strategies the library models — keep-downloading (instant resume, bigger
// buffer) versus release-and-rejoin (tuners freed, possible wait).
#include <cstdio>

#include "client/vcr.hpp"
#include "schemes/skyscraper.hpp"
#include "series/broadcast_series.hpp"

int main() {
  using namespace vodbcast;
  using namespace vodbcast::core::literals;

  const schemes::SkyscraperScheme scheme(12);
  const schemes::DesignInput input{
      .server_bandwidth = 150.0_mbps,  // K = 10 channels per video
      .num_videos = 10,
      .video = core::VideoParams{120.0_min, 1.5_mbps},
  };
  const auto design = scheme.design(input);
  const auto layout = scheme.layout(input, *design);
  const double d1 = layout.unit_duration().v;

  std::printf("SB:W=12 at 150 Mb/s: K = %d, D1 = %.3f min, video = %llu "
              "units\n\n",
              design->segments, d1,
              static_cast<unsigned long long>(layout.total_units()));

  const std::uint64_t t0 = 5;
  const std::uint64_t pause_at = t0 + 9;  // 9 units in
  const std::uint64_t pause_len = 12;     // ~ a quarter-hour coffee

  std::puts("--- strategy 1: keep downloading through the pause ---");
  const auto pause = client::analyze_pause(layout, t0, pause_at, pause_len);
  std::printf("buffer peak without pause: %lld units (%.1f MB)\n",
              static_cast<long long>(pause.peak_buffer_units_unpaused),
              static_cast<double>(pause.peak_buffer_units_unpaused) * 90.0 *
                  d1 / 8.0);
  std::printf("buffer peak with pause   : %lld units (%.1f MB)\n",
              static_cast<long long>(pause.peak_buffer_units_paused),
              static_cast<double>(pause.peak_buffer_units_paused) * 90.0 *
                  d1 / 8.0);
  std::puts("resume is instantaneous; the cost is set-top-box memory.\n");

  std::puts("--- strategy 2: release the tuners, rejoin on resume ---");
  // Suppose segments 1..5 were fully fetched before the pause; the client
  // rejoins for the rest wanting playback back at slot pause_at+pause_len.
  const int first_missing = 6;
  const std::uint64_t position = layout.playback_offset_units(first_missing);
  const auto rejoin = client::plan_rejoin(layout, first_missing, position,
                                          pause_at + pause_len);
  std::printf("requested resume slot : %llu\n",
              static_cast<unsigned long long>(rejoin.requested_resume));
  std::printf("actual resume slot    : %llu (extra wait %llu units = %.2f "
              "min)\n",
              static_cast<unsigned long long>(rejoin.actual_resume),
              static_cast<unsigned long long>(rejoin.extra_wait),
              static_cast<double>(rejoin.extra_wait) * d1);
  std::printf("segments re-fetched   : %d\n", rejoin.refetched_segments);
  std::puts("resume may wait for the broadcast grid; the cost is latency.");
  return 0;
}
