// Compare every broadcasting scheme at one operating point: the paper's
// Section 5 study condensed into a single table, plus the simulator's
// independent confirmation of each scheme's worst wait.
#include <cstdio>
#include <cstdlib>

#include "analysis/experiments.hpp"
#include "schemes/registry.hpp"
#include "sim/simulator.hpp"
#include "util/text_table.hpp"

int main(int argc, char** argv) {
  using namespace vodbcast;
  double bandwidth = 320.0;
  if (argc > 1) {
    bandwidth = std::atof(argv[1]);
    if (bandwidth <= 0.0) {
      std::fprintf(stderr, "usage: %s [bandwidth-mbps]\n", argv[0]);
      return 1;
    }
  }
  std::printf("=== Scheme comparison at B = %.0f Mb/s ===\n\n", bandwidth);
  const auto input = analysis::paper_design_input(bandwidth);

  util::TextTable table({"scheme", "latency (min)", "buffer (MB)",
                         "disk bw (Mb/s)", "simulated max wait"});
  for (const char* label : {"staggered", "PB:a", "PB:b", "PPB:a", "PPB:b",
                            "SB:W=2", "SB:W=52", "SB:W=1705"}) {
    const auto scheme = schemes::make_scheme(label);
    const auto eval = scheme->evaluate(input);
    if (!eval.has_value()) {
      table.add_row({label, "infeasible", "-", "-", "-"});
      continue;
    }
    sim::SimulationConfig config;
    config.horizon = core::Minutes{120.0};
    config.arrivals_per_minute = 3.0;
    const auto report = sim::simulate(*scheme, input, config);
    table.add_row({label,
                   util::TextTable::num(eval->metrics.access_latency.v, 4),
                   util::TextTable::num(
                       eval->metrics.client_buffer.mbytes(), 1),
                   util::TextTable::num(
                       eval->metrics.client_disk_bandwidth.v, 1),
                   util::TextTable::num(report.latency_minutes.max(), 4)});
  }
  std::puts(table.render().c_str());
  std::puts("SB's row dominates PPB on all three metrics and needs ~1/25th\n"
            "of PB's client disk bandwidth -- the paper's conclusion.");
  return 0;
}
