// Quickstart: design a Skyscraper Broadcasting deployment in a dozen lines.
//
//   1. Describe the server (bandwidth, videos, encoding).
//   2. Pick a width W (or derive one from a latency target).
//   3. Read off the three client-side costs and build the channel plan.
#include <cstdio>

#include "schemes/skyscraper.hpp"

int main() {
  using namespace vodbcast;
  using namespace vodbcast::core::literals;

  // A metropolitan head-end with 600 Mb/s of network-I/O, broadcasting the
  // 10 hottest movies (2 hours of MPEG-1 at 1.5 Mb/s).
  const schemes::DesignInput input{
      .server_bandwidth = 600.0_mbps,
      .num_videos = 10,
      .video = core::VideoParams{120.0_min, 1.5_mbps},
  };

  // Skyscraper Broadcasting with the paper's recommended width.
  const schemes::SkyscraperScheme scheme(52);
  const auto evaluation = scheme.evaluate(input);
  if (!evaluation.has_value()) {
    std::puts("not enough bandwidth for one channel per video");
    return 1;
  }

  const auto& d = evaluation->design;
  const auto& m = evaluation->metrics;
  std::printf("scheme            : %s\n", scheme.name().c_str());
  std::printf("channels per video: K = %d (each at the 1.5 Mb/s display "
              "rate)\n",
              d.segments);
  std::printf("worst access wait : %.3f minutes (%.1f seconds)\n",
              m.access_latency.v, m.access_latency.seconds());
  std::printf("client buffer     : %.1f MB\n", m.client_buffer.mbytes());
  std::printf("client disk rate  : %.1f Mb/s (3x the display rate)\n",
              m.client_disk_bandwidth.v);

  // The concrete broadcast plan a server would execute.
  const auto plan = scheme.plan(input, d);
  std::printf("server streams    : %zu periodic segment loops\n",
              plan.stream_count());
  const auto first = plan.find(/*video=*/0, /*segment=*/1);
  std::printf("video 0 segment 1 : repeats every %.3f minutes\n",
              first->period.v);
  return 0;
}
