// Metropolitan VoD service end to end: the scenario from the paper's
// introduction. A 100-title store with Zipf(0.271) popularity; the 10
// hottest titles go on Skyscraper Broadcasting channels, the tail is served
// by MQL scheduled multicast, and a Poisson subscriber population drives
// both sides. The final act federates three regional head ends: the Zipf
// head is replicated everywhere, the tail partitioned by home region, and
// overflow spills across capacity-limited inter-region links.
#include <cstdio>

#include "batching/hybrid.hpp"
#include "metro/federation.hpp"
#include "metro/topology.hpp"
#include "sim/simulator.hpp"
#include "workload/zipf.hpp"

int main() {
  using namespace vodbcast;
  std::puts("=== Metropolitan video-on-demand service ===\n");

  // The workload the paper cites: 80% of demand concentrates on the head.
  const auto popularity = workload::zipf_probabilities(100);
  const auto hot = workload::titles_for_mass(popularity, 0.8);
  std::printf("Zipf(0.271) over 100 titles: 80%% of demand on the top %zu\n",
              hot);

  batching::HybridConfig config;
  config.total_bandwidth = core::MbitPerSec{600.0};
  config.catalog_size = 100;
  config.hot_titles = 10;
  config.broadcast_channels_per_video = 6;
  config.sb_width = 52;
  config.video =
      core::VideoParams{core::Minutes{120.0}, core::MbitPerSec{1.5}};
  config.arrivals_per_minute = 3.0;
  config.horizon = core::Minutes{1500.0};

  const batching::MqlPolicy policy;
  const auto report = batching::evaluate_hybrid(policy, config);

  std::printf("\nbroadcast side: %zu titles, %.0f Mb/s, worst wait %.2f min "
              "(guaranteed)\n",
              report.hot_titles, report.broadcast_bandwidth.v,
              report.broadcast_worst_latency.v);
  std::printf("  absorbs %.0f%% of all demand\n",
              100.0 * report.hot_demand_fraction);
  std::printf("multicast tail: %d channels, policy %s\n",
              report.multicast_channels, report.multicast.policy.c_str());
  std::printf("  served %llu requests in %llu streams (mean batch %.2f)\n",
              static_cast<unsigned long long>(report.multicast.served),
              static_cast<unsigned long long>(
                  report.multicast.streams_started),
              report.multicast.batch_size.empty()
                  ? 0.0
                  : report.multicast.batch_size.mean());
  if (!report.multicast.wait_minutes.empty()) {
    std::printf("  tail waits: %s\n",
                report.multicast.wait_minutes.summary().c_str());
  }
  std::printf("combined demand-weighted mean wait: %.3f minutes\n",
              report.combined_mean_wait_minutes);

  // Zoom into the broadcast side with the full simulator: every client runs
  // the exact two-loader reception plan.
  std::puts("\n--- broadcast side under the microscope ---");
  const schemes::SkyscraperScheme sb(config.sb_width);
  const schemes::DesignInput input{
      .server_bandwidth = report.broadcast_bandwidth,
      .num_videos = static_cast<int>(config.hot_titles),
      .video = config.video,
  };
  sim::SimulationConfig sim_config;
  sim_config.horizon = core::Minutes{300.0};
  sim_config.arrivals_per_minute = 2.0;
  sim_config.plan_clients = true;
  const auto sim_report = sim::simulate(sb, input, sim_config);
  std::printf("clients: %llu, waits: %s\n",
              static_cast<unsigned long long>(sim_report.clients_served),
              sim_report.latency_minutes.summary().c_str());
  std::printf("jitter events: %llu (must be 0), peak tuners: %d\n",
              static_cast<unsigned long long>(sim_report.jitter_events),
              sim_report.max_concurrent_downloads);
  if (!sim_report.buffer_peak_mbits.empty()) {
    std::printf("client buffer peaks: max %.1f MB\n",
                sim_report.buffer_peak_mbits.max() / 8.0);
  }

  // The metro is more than one head end: federate three regions — a dense
  // core and two suburbs — replicating the 10 hottest titles everywhere
  // while each tail title lives in exactly one region.
  std::puts("\n--- three-region federation ---");
  const metro::Topology metro_topology({{3.0, 180}, {2.0, 140}, {1.0, 100}},
                                       16, core::Minutes{0.5});
  metro::FederationConfig fed_config;
  fed_config.catalog_size = 100;
  fed_config.replicate_top = 10;
  fed_config.video = config.video;
  fed_config.horizon = core::Minutes{600.0};
  fed_config.seed = 97;
  const auto fed = metro::simulate_federation(metro_topology, fed_config);
  std::printf("replicated head: %zu titles x %d SB channels (D1 %.3f min);"
              " %d tail stream slots\n",
              fed.replicated_titles, fed_config.sb_channels_per_title,
              fed.broadcast_latency_min, fed.tail_slots_total);
  std::printf("arrivals %llu: %.1f%% served locally, %.2f%% rerouted,"
              " %.1f%% rejected\n",
              static_cast<unsigned long long>(fed.arrivals),
              100.0 * static_cast<double>(fed.served_local) /
                  static_cast<double>(fed.arrivals),
              100.0 * fed.reroute_rate(), 100.0 * fed.rejection_rate());
  std::printf("mean penalized wait: %.3f min; inter-region traffic %.1f"
              " Gbit\n",
              fed.mean_penalized_wait_min(), fed.link_mbits / 1000.0);
  for (std::size_t r = 0; r < fed.regions.size(); ++r) {
    const auto& region = fed.regions[r];
    std::printf("  region %zu: %llu arrivals, %llu local, %llu out /"
                " %llu in, %llu rejected\n",
                r, static_cast<unsigned long long>(region.arrivals),
                static_cast<unsigned long long>(region.served_local),
                static_cast<unsigned long long>(region.rerouted_out),
                static_cast<unsigned long long>(region.rerouted_in),
                static_cast<unsigned long long>(region.rejected));
  }
  return 0;
}
