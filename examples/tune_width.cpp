// Tune the skyscraper width for a deployment: given a latency budget and a
// per-client buffer budget, find the widths that satisfy each and report
// whether a single W satisfies both (the Section 5.4 cross-examination of
// Figures 7 and 8, as an API).
#include <cstdio>
#include <cstdlib>

#include "schemes/skyscraper.hpp"
#include "series/broadcast_series.hpp"

int main(int argc, char** argv) {
  using namespace vodbcast;
  using namespace vodbcast::core::literals;

  double bandwidth = 400.0;
  double latency_budget_min = 0.25;
  double buffer_budget_mb = 100.0;
  if (argc == 4) {
    bandwidth = std::atof(argv[1]);
    latency_budget_min = std::atof(argv[2]);
    buffer_budget_mb = std::atof(argv[3]);
  } else if (argc != 1) {
    std::fprintf(stderr,
                 "usage: %s [bandwidth-mbps latency-min buffer-mb]\n",
                 argv[0]);
    return 1;
  }

  const schemes::DesignInput input{
      .server_bandwidth = core::MbitPerSec{bandwidth},
      .num_videos = 10,
      .video = core::VideoParams{120.0_min, 1.5_mbps},
  };
  std::printf("=== Width tuning at B = %.0f Mb/s ===\n", bandwidth);
  std::printf("budgets: latency <= %.2f min, buffer <= %.0f MB\n\n",
              latency_budget_min, buffer_budget_mb);

  // Find the smallest W meeting the latency budget...
  const schemes::SkyscraperScheme probe(2);
  const auto choice =
      probe.width_for_latency(input, core::Minutes{latency_budget_min});
  std::printf("smallest W meeting the latency budget: %llu "
              "(latency %.4f min)\n",
              static_cast<unsigned long long>(choice.width),
              choice.latency.v);

  // ... and check what it costs in buffer; then scan the series for the
  // feasible band.
  const series::SkyscraperSeries law;
  std::puts("\n  W        latency(min)  buffer(MB)  verdict");
  bool any = false;
  for (int n = 1; n <= 30; n += 2) {
    const std::uint64_t w = law.element(n);
    const auto eval = schemes::SkyscraperScheme(w).evaluate(input);
    if (!eval.has_value()) {
      continue;
    }
    const bool latency_ok =
        eval->metrics.access_latency.v <= latency_budget_min;
    const bool buffer_ok =
        eval->metrics.client_buffer.mbytes() <= buffer_budget_mb;
    std::printf("  %-8llu %-13.4f %-11.1f %s%s\n",
                static_cast<unsigned long long>(w),
                eval->metrics.access_latency.v,
                eval->metrics.client_buffer.mbytes(),
                latency_ok ? "+latency " : "-latency ",
                buffer_ok ? "+buffer" : "-buffer");
    any = any || (latency_ok && buffer_ok);
  }
  std::printf("\n%s\n",
              any ? "a width satisfying both budgets exists"
                  : "no width satisfies both budgets; raise one of them or "
                    "add bandwidth");
  return any ? 0 : 2;
}
