// Failure injection: run packet-level SB sessions over increasingly lossy
// channels and watch the jitter-free guarantee erode — then show what the
// client does about it (rejoin the damaged segment's next repetition).
#include <cstdio>

#include "client/vcr.hpp"
#include "net/packet_client.hpp"
#include "schemes/skyscraper.hpp"

int main() {
  using namespace vodbcast;
  using namespace vodbcast::core::literals;

  const schemes::SkyscraperScheme scheme(12);
  const schemes::DesignInput input{
      .server_bandwidth = 120.0_mbps,  // K = 8
      .num_videos = 10,
      .video = core::VideoParams{120.0_min, 1.5_mbps},
  };
  const auto design = scheme.design(input);
  const auto layout = scheme.layout(input, *design);
  const auto plan = scheme.plan(input, *design);

  std::puts("=== SB session over a lossy metropolitan network ===\n");
  for (const double p : {0.0, 0.001, 0.01}) {
    net::BernoulliLoss loss(p, 2026);
    const auto report = net::run_packet_session(plan, 0, layout, 3, loss,
                                                core::Mbits{10.0});
    std::printf("loss %.3f: %zu/%zu packets lost, %zu segments with holes, "
                "jitter-free: %s\n",
                p, report.packets_lost, report.packets_sent,
                report.segments_with_gaps,
                report.jitter_free ? "yes" : "NO");
    if (!report.jitter_free && !report.stalled_segments.empty()) {
      // Recovery: drop the damaged suffix and rejoin its broadcasts at the
      // next feasible phase.
      const int first_bad = report.stalled_segments.front();
      const std::uint64_t position =
          layout.playback_offset_units(first_bad);
      const auto rejoin =
          client::plan_rejoin(layout, first_bad, position, 3 + position);
      std::printf("  recovery: re-join from segment %d; extra wait %llu "
                  "units (%.2f min)\n",
                  first_bad,
                  static_cast<unsigned long long>(rejoin.extra_wait),
                  static_cast<double>(rejoin.extra_wait) *
                      layout.unit_duration().v);
    }
  }
  std::puts("\nBroadcast has no retransmission path: resilience comes from\n"
            "the channels looping forever, so a damaged segment is simply\n"
            "re-joined on its next repetition.");
  return 0;
}
